(* Unit and property tests for vis_util: bitsets, the priority queue,
   topological sorting, table rendering and numeric helpers. *)

module Bitset = Vis_util.Bitset
module Pqueue = Vis_util.Pqueue
module Toposort = Vis_util.Toposort
module Num = Vis_util.Num
module Json = Vis_util.Json

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Bitset unit tests. *)

let test_bitset_basics () =
  let s = Bitset.of_list [ 0; 2; 5 ] in
  check "mem 0" true (Bitset.mem 0 s);
  check "mem 1" false (Bitset.mem 1 s);
  check "mem 5" true (Bitset.mem 5 s);
  check_int "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check (list int)) "elements" [ 0; 2; 5 ] (Bitset.elements s);
  check "empty is empty" true (Bitset.is_empty Bitset.empty);
  check "nonempty" false (Bitset.is_empty s);
  check_int "choose" 0 (Bitset.choose s);
  check_int "choose tail" 2 (Bitset.choose (Bitset.remove 0 s))

let test_bitset_algebra () =
  let a = Bitset.of_list [ 0; 1; 2 ] and b = Bitset.of_list [ 2; 3 ] in
  Alcotest.(check (list int)) "union" [ 0; 1; 2; 3 ]
    (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 2 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 0; 1 ] (Bitset.elements (Bitset.diff a b));
  check "subset" true (Bitset.subset (Bitset.of_list [ 0; 1 ]) a);
  check "not subset" false (Bitset.subset b a);
  check "proper subset" true (Bitset.proper_subset (Bitset.of_list [ 0 ]) a);
  check "not proper (equal)" false (Bitset.proper_subset a a);
  check "disjoint" true (Bitset.disjoint (Bitset.of_list [ 0 ]) (Bitset.of_list [ 1 ]));
  check "not disjoint" false (Bitset.disjoint a b)

let test_bitset_full_subsets () =
  check_int "full 3 cardinal" 3 (Bitset.cardinal (Bitset.full 3));
  check_int "full 0" 0 (Bitset.cardinal (Bitset.full 0));
  let subs = Bitset.subsets (Bitset.full 3) in
  check_int "8 subsets of a 3-set" 8 (List.length subs);
  check_int "7 nonempty" 7 (List.length (Bitset.nonempty_subsets (Bitset.full 3)));
  check_int "6 proper nonempty" 6
    (List.length (Bitset.proper_nonempty_subsets (Bitset.full 3)));
  (* Subsets come out in increasing encoding, so subset-before-superset. *)
  let ints = List.map Bitset.to_int subs in
  check "sorted" true (List.sort compare ints = ints)

let test_bitset_bounds () =
  Alcotest.check_raises "singleton 62" (Invalid_argument "Bitset: element 62 out of range")
    (fun () -> ignore (Bitset.singleton 62));
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: element -1 out of range")
    (fun () -> ignore (Bitset.add (-1) Bitset.empty));
  Alcotest.check_raises "choose empty" Not_found (fun () ->
      ignore (Bitset.choose Bitset.empty))

(* Bitset properties. *)

let set_gen =
  QCheck2.Gen.(map Bitset.of_list (list_size (int_bound 10) (int_bound 20)))

let prop_union_comm =
  QCheck2.Test.make ~name:"bitset: union commutes" ~count:200
    QCheck2.Gen.(pair set_gen set_gen)
    (fun (a, b) -> Bitset.equal (Bitset.union a b) (Bitset.union b a))

let prop_diff_inter =
  QCheck2.Test.make ~name:"bitset: diff and inter partition" ~count:200
    QCheck2.Gen.(pair set_gen set_gen)
    (fun (a, b) ->
      let d = Bitset.diff a b and i = Bitset.inter a b in
      Bitset.disjoint d i && Bitset.equal (Bitset.union d i) a)

let prop_subsets_count =
  QCheck2.Test.make ~name:"bitset: 2^n subsets" ~count:50 set_gen (fun s ->
      List.length (Bitset.subsets s) = 1 lsl Bitset.cardinal s)

let prop_fold_matches_elements =
  QCheck2.Test.make ~name:"bitset: fold visits elements in order" ~count:200
    set_gen (fun s ->
      List.rev (Bitset.fold (fun i acc -> i :: acc) s []) = Bitset.elements s)

(* ------------------------------------------------------------------ *)
(* Priority queue. *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun x -> Pqueue.push q (float_of_int x) x) [ 5; 1; 4; 1; 3; 9; 2 ];
  check_int "length" 7 (Pqueue.length q);
  let rec drain acc =
    match Pqueue.pop_min q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ] (drain []);
  check "empty after drain" true (Pqueue.is_empty q)

let test_pqueue_peek () =
  let q = Pqueue.create () in
  check "peek empty" true (Pqueue.peek_min q = None);
  Pqueue.push q 2.0 "b";
  Pqueue.push q 1.0 "a";
  (match Pqueue.peek_min q with
  | Some (p, v) ->
      Alcotest.(check (float 0.)) "peek prio" 1.0 p;
      Alcotest.(check string) "peek value" "a" v
  | None -> Alcotest.fail "expected an entry");
  check_int "peek does not remove" 2 (Pqueue.length q);
  Pqueue.clear q;
  check "cleared" true (Pqueue.is_empty q)

let test_pqueue_tiebreak () =
  let q = Pqueue.create () in
  Pqueue.push ~tie:3 q 1.0 "c";
  Pqueue.push ~tie:1 q 1.0 "a";
  Pqueue.push ~tie:2 q 1.0 "b";
  Pqueue.push ~tie:9 q 0.5 "first";
  let rec drain acc =
    match Pqueue.pop_min q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list string)) "priority then tie"
    [ "first"; "a"; "b"; "c" ] (drain [])

let prop_pqueue_sorts =
  QCheck2.Test.make ~name:"pqueue: drains in priority order" ~count:200
    QCheck2.Gen.(list_size (int_bound 100) (float_bound_inclusive 1000.))
    (fun floats ->
      let q = Pqueue.create () in
      List.iter (fun f -> Pqueue.push q f f) floats;
      let rec drain acc =
        match Pqueue.pop_min q with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare floats)

(* ------------------------------------------------------------------ *)
(* Topological sort. *)

let test_toposort_chain () =
  Alcotest.(check (list int)) "chain" [ 0; 1; 2; 3 ]
    (Toposort.sort ~n:4 ~edges:[ (0, 1); (1, 2); (2, 3) ])

let test_toposort_respects_edges () =
  let order = Toposort.sort ~n:5 ~edges:[ (3, 1); (4, 0); (1, 0) ] in
  let pos x = Option.get (List.find_index (Int.equal x) order) in
  check "3 before 1" true (pos 3 < pos 1);
  check "4 before 0" true (pos 4 < pos 0);
  check "1 before 0" true (pos 1 < pos 0)

let test_toposort_cycle () =
  Alcotest.check_raises "cycle" Toposort.Cycle (fun () ->
      ignore (Toposort.sort ~n:2 ~edges:[ (0, 1); (1, 0) ]))

let test_toposort_deterministic () =
  Alcotest.(check (list int)) "smallest-first on no edges" [ 0; 1; 2 ]
    (Toposort.sort ~n:3 ~edges:[])

(* ------------------------------------------------------------------ *)
(* Table rendering and numeric helpers. *)

let test_tableprint () =
  let t = Vis_util.Tableprint.create [ "a"; "bee" ] in
  Vis_util.Tableprint.add_row t [ "1"; "2" ];
  Vis_util.Tableprint.add_row t [ "333" ];
  let out = Vis_util.Tableprint.render t in
  check "contains header" true
    (String.length out > 0 && String.sub out 0 1 = "a");
  let lines = String.split_on_char '\n' out in
  check_int "4 lines + trailing" 5 (List.length lines);
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Tableprint.add_row: too many cells") (fun () ->
      Vis_util.Tableprint.add_row t [ "1"; "2"; "3" ])

let test_fmt_compact () =
  Alcotest.(check string) "grouping" "12,345" (Vis_util.Tableprint.fmt_compact 12345.);
  Alcotest.(check string) "small" "999" (Vis_util.Tableprint.fmt_compact 999.);
  Alcotest.(check string) "fraction" "1.50" (Vis_util.Tableprint.fmt_compact 1.5)

let test_num () =
  check_int "ceil_div exact" 3 (Num.ceil_div 9 3);
  check_int "ceil_div round up" 4 (Num.ceil_div 10 3);
  Alcotest.(check (float 0.)) "fceil positive" 3. (Num.fceil 2.1);
  Alcotest.(check (float 0.)) "fceil negative clamps" 0. (Num.fceil (-2.1));
  check "approx_equal" true (Num.approx_equal 1.0 (1.0 +. 1e-12));
  check "not approx_equal" false (Num.approx_equal 1.0 1.1)

(* ------------------------------------------------------------------ *)
(* Json: \uXXXX escapes decode to UTF-8 and round-trip through the
   printer (which passes non-ASCII bytes through verbatim). *)

let test_json_unicode_escapes () =
  let str s =
    match Json.of_string s with
    | Json.String v -> v
    | _ -> Alcotest.fail "expected a string"
  in
  (* ASCII escape decodes to the plain character. *)
  check_string "ascii" "A" (str {|"A"|});
  (* 2-byte UTF-8: U+00E9 (e-acute). *)
  check_string "latin-1 supplement" "\xc3\xa9" (str {|"\u00e9"|});
  (* 3-byte UTF-8: U+20AC (euro sign). *)
  check_string "bmp" "\xe2\x82\xac" (str {|"\u20ac"|});
  (* Surrogate pair: U+1D11E (musical G clef). *)
  check_string "supplementary plane" "\xf0\x9d\x84\x9e"
    (str {|"\ud834\udd1e"|});
  (* Decoded text survives a print/parse round trip (the printer passes
     the UTF-8 bytes through verbatim). *)
  let v = Json.Obj [ ("s", Json.String (str {|"caf\u00e9 \ud834\udd1e"|})) ] in
  check_string "round trip" (Json.to_string v)
    (Json.to_string (Json.of_string (Json.to_string v)));
  (* Unpaired surrogates are rejected, not silently mangled. *)
  let rejects s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  check "lone high surrogate" true (rejects {|"\ud834"|});
  check "lone low surrogate" true (rejects {|"\udd1e"|});
  check "high surrogate + ascii escape" true (rejects {|"\ud834A"|})

(* Adversarial inputs: deep nesting and non-finite numeric literals must
   raise the typed [Parse_error] — never a stack overflow or a silent
   infinity that the printer would then round-trip as null. *)

let test_json_hardening () =
  let rejects s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  (* Nesting right at the limit parses. *)
  let nested d = String.make d '[' ^ String.make d ']' in
  (match Json.of_string (nested Json.max_depth) with
  | Json.List _ -> ()
  | _ -> Alcotest.fail "expected a list");
  (* One level past the limit is a typed error. *)
  check "lists beyond max_depth" true (rejects (nested (Json.max_depth + 1)));
  (* Far past the limit must not blow the stack either. *)
  check "pathological list nesting" true (rejects (String.make 100_000 '['));
  let objs d =
    String.concat "" (List.init d (fun _ -> {|{"k":|}))
    ^ "0" ^ String.make d '}'
  in
  check "objects beyond max_depth" true (rejects (objs (Json.max_depth + 1)));
  (* Mixed-container nesting counts every level. *)
  check "mixed nesting" true
    (rejects (String.concat "" (List.init 300 (fun _ -> {|[{"k":|}))));
  (* Overflowing exponents would parse to infinity; reject them. *)
  check "positive overflow" true (rejects "1e999");
  check "negative overflow" true (rejects "-1e999");
  check "overflow in a field" true (rejects {|{"x": 1e999}|});
  (* Large-but-finite literals still parse. *)
  (match Json.of_string "1e308" with
  | Json.Float x -> check "finite float" true (Float.is_finite x)
  | _ -> Alcotest.fail "expected a float");
  (* The bare words nan/inf are not in the JSON grammar at all. *)
  check "nan literal" true (rejects "nan");
  check "inf literal" true (rejects "inf")

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "vis_util"
    [
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "algebra" `Quick test_bitset_algebra;
          Alcotest.test_case "full and subsets" `Quick test_bitset_full_subsets;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
        ]
        @ qt
            [
              prop_union_comm;
              prop_diff_inter;
              prop_subsets_count;
              prop_fold_matches_elements;
            ] );
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "peek" `Quick test_pqueue_peek;
          Alcotest.test_case "tie-break" `Quick test_pqueue_tiebreak;
        ]
        @ qt [ prop_pqueue_sorts ] );
      ( "toposort",
        [
          Alcotest.test_case "chain" `Quick test_toposort_chain;
          Alcotest.test_case "edges respected" `Quick test_toposort_respects_edges;
          Alcotest.test_case "cycle detected" `Quick test_toposort_cycle;
          Alcotest.test_case "deterministic" `Quick test_toposort_deterministic;
        ] );
      ( "tableprint and num",
        [
          Alcotest.test_case "render" `Quick test_tableprint;
          Alcotest.test_case "compact numbers" `Quick test_fmt_compact;
          Alcotest.test_case "numeric helpers" `Quick test_num;
        ] );
      ( "json",
        [
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "adversarial inputs" `Quick test_json_hardening;
        ] );
    ]
