(* Tests for the observability layer: the JSON tree (printer/parser
   roundtrip), the cost-cache counters (hit/miss/eviction bookkeeping and
   semantic transparency — cached costs equal freshly computed ones), and
   the Search_stats scoreboard threaded through every search algorithm
   (counter invariants, admissibility audit, caching on/off equivalence). *)

module Bitset = Vis_util.Bitset
module Json = Vis_util.Json
module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Cost = Vis_costmodel.Cost
module Problem = Vis_core.Problem
module Astar = Vis_core.Astar
module Greedy = Vis_core.Greedy
module Search_stats = Vis_core.Search_stats

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf msg = Alcotest.(check (float 1e-9)) msg

let schema1 () = Vis_workload.Schemas.schema1 ()

(* ------------------------------------------------------------------ *)
(* JSON. *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("n", Json.Int (-42));
        ("x", Json.Float 3.25);
        ("s", Json.String "a \"quoted\"\nline\twith\\escapes");
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ( "nested",
          Json.List [ Json.Int 1; Json.Obj [ ("k", Json.Float 0.5) ]; Json.Null ]
        );
      ]
  in
  List.iter
    (fun rendered ->
      let parsed = Json.of_string rendered in
      checkb "roundtrip" true (parsed = v))
    [ Json.to_string v; Json.to_string ~indent:2 v ]

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | v -> Alcotest.failf "parsed %S as %s" s (Json.to_string v))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

let test_json_numbers () =
  checkb "int stays int" true (Json.of_string "17" = Json.Int 17);
  checkf "float member" 2.5
    (Json.to_float (Json.member "x" (Json.of_string "{\"x\": 2.5}")));
  checkf "int widens" 7. (Json.to_float (Json.of_string "7"));
  (* Non-finite floats cannot be represented; they print as null. *)
  checkb "nan is null" true (Json.to_string (Json.Float Float.nan) = "null");
  checkb "inf is null" true
    (Json.to_string (Json.Float Float.infinity) = "null");
  checkb "missing member" true (Json.member "y" (Json.of_string "{}") = Json.Null)

(* ------------------------------------------------------------------ *)
(* Cost-cache counters and transparency. *)

let test_cache_counters () =
  let schema = schema1 () in
  let derived = Vis_catalog.Derived.create schema in
  let cache = Cost.new_cache () in
  let before = Cost.cache_stats cache in
  checki "no hits yet" 0 before.Cost.cs_hits;
  let c1 = Cost.total_of ~cache derived Config.empty in
  let s1 = Cost.cache_stats cache in
  checkb "first run misses" true (s1.Cost.cs_misses > 0);
  checki "entries = misses (unbounded)" s1.Cost.cs_misses s1.Cost.cs_entries;
  let c2 = Cost.total_of ~cache derived Config.empty in
  let s2 = Cost.cache_stats cache in
  checkf "repeat total identical" c1 c2;
  checki "repeat run adds no misses" s1.Cost.cs_misses s2.Cost.cs_misses;
  checkb "repeat run hits" true (s2.Cost.cs_hits > s1.Cost.cs_hits);
  checki "no evictions unbounded" 0 s2.Cost.cs_evictions;
  Cost.reset_cache_stats cache;
  let s3 = Cost.cache_stats cache in
  checki "reset hits" 0 s3.Cost.cs_hits;
  checki "reset misses" 0 s3.Cost.cs_misses;
  checki "reset keeps entries" s2.Cost.cs_entries s3.Cost.cs_entries

let test_cache_eviction () =
  let schema = schema1 () in
  let derived = Vis_catalog.Derived.create schema in
  let cache = Cost.new_cache ~capacity:8 () in
  let unbounded = Cost.total_of derived Config.empty in
  let bounded = Cost.total_of ~cache derived Config.empty in
  checkf "bounded cache same total" unbounded bounded;
  let s = Cost.cache_stats cache in
  checkb "evictions happened" true (s.Cost.cs_evictions > 0);
  checkb "stays within capacity" true (s.Cost.cs_entries <= 8);
  (* Re-evaluating after evictions still gives the same answer. *)
  checkf "post-eviction total" unbounded (Cost.total_of ~cache derived Config.empty)

let random_config ~rng p =
  let views =
    List.filter (fun _ -> Random.State.bool rng) p.Problem.candidate_views
  in
  let indexes =
    List.filter (fun _ -> Random.State.bool rng)
      (Problem.indexes_for_views p views)
  in
  Config.make ~views ~indexes

(* Cached cost = freshly computed cost, on random schemas and random
   configurations, with the shared cache warmed by *other* configurations
   first (the cross-configuration sharing the search algorithms rely on). *)
let prop_cache_transparent =
  QCheck2.Test.make ~name:"cache: warmed shared cache equals fresh compute"
    ~count:60
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let schema = Vis_workload.Schemas.random ~rng () in
      let p = Problem.make schema in
      (* Warm the problem's shared cache with a few unrelated configs. *)
      for _ = 1 to 3 do
        ignore (Problem.total p (random_config ~rng p))
      done;
      let config = random_config ~rng p in
      let cached = Problem.total p config in
      let fresh = Cost.total_of p.Problem.derived config in
      Vis_util.Num.approx_equal ~eps:1e-9 cached fresh)

let prop_bounded_cache_transparent =
  QCheck2.Test.make ~name:"cache: eviction never changes a total" ~count:40
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let schema = Vis_workload.Schemas.random ~rng () in
      let derived = Vis_catalog.Derived.create schema in
      let p = Problem.make schema in
      let config = random_config ~rng p in
      let tiny = Cost.new_cache ~capacity:4 () in
      let bounded = Cost.total_of ~cache:tiny derived config in
      let fresh = Cost.total_of derived config in
      Vis_util.Num.approx_equal ~eps:1e-9 bounded fresh)

(* ------------------------------------------------------------------ *)
(* Search_stats invariants. *)

let check_invariants name (s : Search_stats.t) =
  checkb (name ^ ": expanded <= generated") true
    (Search_stats.expanded s <= Search_stats.generated s);
  checkb (name ^ ": generated <= evaluated") true
    (Search_stats.generated s <= Search_stats.evaluated s);
  checkb (name ^ ": no admissibility violations") true
    (Search_stats.admissibility_violations s = 0);
  List.iter
    (fun (_, seconds) -> checkb (name ^ ": phase time >= 0") true (seconds >= 0.))
    (Search_stats.phase_timings s)

let test_astar_stats_invariants () =
  let p = Problem.make (schema1 ()) in
  let r = Astar.search p in
  let s = r.Astar.search_stats in
  check_invariants "astar" s;
  (* The scoreboard and the legacy stats record agree. *)
  checki "expanded agrees" r.Astar.stats.Astar.expanded (Search_stats.expanded s);
  checki "generated agrees" r.Astar.stats.Astar.generated
    (Search_stats.generated s);
  (* Every popped state was audited against the proven optimum. *)
  checkb "admissibility audited" true (Search_stats.admissibility_checks s > 0);
  checkb "frontier observed" true (Search_stats.max_frontier s > 0);
  checkb "incumbent pruning observed" true
    (Search_stats.pruned s "incumbent-bound" > 0)

let test_heuristic_stats_invariants () =
  let p = Problem.make (schema1 ()) in
  check_invariants "greedy" (Greedy.search p).Greedy.search_stats;
  check_invariants "local-search"
    (Vis_core.Local_search.search p).Vis_core.Local_search.search_stats;
  let small = Problem.make (Vis_workload.Schemas.two_relation ()) in
  let ex = Vis_core.Exhaustive.search small in
  check_invariants "exhaustive" ex.Vis_core.Exhaustive.search_stats;
  checki "exhaustive: states = evaluations" ex.Vis_core.Exhaustive.states
    (Search_stats.evaluated ex.Vis_core.Exhaustive.search_stats)

let test_stats_json_valid () =
  let p = Problem.make (schema1 ()) in
  let r = Astar.search p in
  let doc = Json.to_string ~indent:2 (Search_stats.to_json r.Astar.search_stats) in
  let parsed = Json.of_string doc in
  checkb "expanded present" true
    (Json.to_float (Json.member "expanded" parsed) > 0.);
  checkb "pruning object present" true
    (match Json.member "pruning" parsed with
    | Json.Obj ((_ :: _) as rules) ->
        List.for_all (fun (_, v) -> Json.to_float v >= 0.) rules
    | _ -> false);
  let cache_doc = Json.of_string (Json.to_string (Cost.cache_stats_json p.Problem.cache)) in
  checkb "cache hits present" true
    (Json.to_float (Json.member "hits" cache_doc) > 0.)

let test_render_smoke () =
  let p = Problem.make (schema1 ()) in
  let r = Astar.search p in
  let text = Search_stats.render r.Astar.search_stats in
  List.iter
    (fun needle ->
      checkb (Printf.sprintf "render mentions %S" needle) true
        (let nl = String.length needle and tl = String.length text in
         let rec scan i =
           i + nl <= tl && (String.sub text i nl = needle || scan (i + 1))
         in
         scan 0))
    [ "states expanded"; "pruning rule"; "incumbent-bound"; "phase" ]

(* Caching on/off must not change what any search algorithm finds. *)
let test_cache_onoff_same_optimum () =
  List.iter
    (fun (name, schema) ->
      let shared = Astar.search (Problem.make schema) in
      let private_ = Astar.search (Problem.make ~share_cache:false schema) in
      Alcotest.(check (float 1e-9))
        (name ^ ": same optimal cost") shared.Astar.best_cost
        private_.Astar.best_cost;
      checkb (name ^ ": same optimal config") true
        (Config.equal shared.Astar.best private_.Astar.best))
    [
      ("schema1", schema1 ());
      ("two_relation", Vis_workload.Schemas.two_relation ());
    ]

let prop_cache_onoff_random =
  QCheck2.Test.make ~name:"astar: caching on/off identical on random schemas"
    ~count:15
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let schema = Vis_workload.Schemas.random ~rng () in
      if Vis_core.Exhaustive.count_states (Problem.make schema) > 25_000. then
        true
      else begin
        let shared = Astar.search (Problem.make schema) in
        let private_ = Astar.search (Problem.make ~share_cache:false schema) in
        Vis_util.Num.approx_equal ~eps:1e-9 shared.Astar.best_cost
          private_.Astar.best_cost
        && Config.equal shared.Astar.best private_.Astar.best
      end)

(* ------------------------------------------------------------------ *)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "vis_stats"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
        ] );
      ( "cost cache",
        [
          Alcotest.test_case "counters" `Quick test_cache_counters;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
        ]
        @ qt [ prop_cache_transparent; prop_bounded_cache_transparent ] );
      ( "search stats",
        [
          Alcotest.test_case "astar invariants" `Quick test_astar_stats_invariants;
          Alcotest.test_case "heuristic invariants" `Quick
            test_heuristic_stats_invariants;
          Alcotest.test_case "json valid" `Quick test_stats_json_valid;
          Alcotest.test_case "render smoke" `Quick test_render_smoke;
          Alcotest.test_case "cache on/off optimum" `Quick
            test_cache_onoff_same_optimum;
        ]
        @ qt [ prop_cache_onoff_random ] );
    ]
