(* Tests for the Section-6.1 space-constrained study: the staircase's
   shape invariants (monotone space, strictly improving cost, empty design
   first, unconstrained optimum last), [cost_at] at, below and between the
   step budgets, and the Figure-11 feature entry order. *)

module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Problem = Vis_core.Problem
module Astar = Vis_core.Astar
module Space = Vis_core.Space

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf msg = Alcotest.(check (float 1e-6)) msg

let two_relation () = Problem.make (Vis_workload.Schemas.two_relation ())

(* A 4-step staircase on 8_000 states, found by scanning the random
   generator; small enough for the full enumeration to stay instant. *)
let staircase_problem () =
  let rng = Random.State.make [| 7; 18 |] in
  Problem.make (Vis_workload.Schemas.random ~rng ())

let sweeps = lazy (Space.sweep (two_relation ()), Space.sweep (staircase_problem ()))

(* ------------------------------------------------------------------ *)
(* Staircase shape. *)

let test_staircase_shape () =
  let check_shape name p sw =
    let empty = Problem.total p Config.empty in
    let steps = sw.Space.sw_steps in
    checkb (name ^ ": at least one step") true (steps <> []);
    let first = List.hd steps in
    let last = List.nth steps (List.length steps - 1) in
    checkf (name ^ ": first step occupies no space") 0. first.Space.st_space;
    checkf (name ^ ": first step is the empty design") empty first.Space.st_cost;
    checkb (name ^ ": first step has the empty configuration") true
      (Config.equal first.Space.st_config Config.empty);
    checkf
      (name ^ ": last step reaches the unconstrained optimum")
      sw.Space.sw_unconstrained_cost last.Space.st_cost;
    let rec monotone = function
      | a :: (b :: _ as rest) ->
          checkb (name ^ ": space strictly increases") true
            (a.Space.st_space < b.Space.st_space);
          checkb (name ^ ": cost strictly decreases") true
            (a.Space.st_cost > b.Space.st_cost);
          monotone rest
      | _ -> ()
    in
    monotone steps;
    (* Every step's cost re-evaluates and its space is its configuration's. *)
    List.iter
      (fun st ->
        checkf (name ^ ": step cost re-evaluates")
          (Problem.total p st.Space.st_config)
          st.Space.st_cost;
        checkf (name ^ ": step space is the configuration's")
          (Config.space p.Problem.derived st.Space.st_config)
          st.Space.st_space)
      steps
  in
  let sw2, swn = Lazy.force sweeps in
  check_shape "two_relation" (two_relation ()) sw2;
  check_shape "staircase" (staircase_problem ()) swn;
  checki "the scanned instance really has a 4-step staircase" 4
    (List.length swn.Space.sw_steps)

let test_unconstrained_matches_astar () =
  let p = staircase_problem () in
  let _, sw = Lazy.force sweeps in
  let a = Astar.search p in
  checkf "unconstrained sweep cost equals the A* optimum" a.Astar.best_cost
    sw.Space.sw_unconstrained_cost

(* ------------------------------------------------------------------ *)
(* cost_at: exact on the boundaries, previous step between them,
   unachievable below the first. *)

let test_cost_at () =
  let _, sw = Lazy.force sweeps in
  List.iter
    (fun st ->
      checkf "cost_at on a step budget is that step's cost" st.Space.st_cost
        (Space.cost_at sw ~budget:st.Space.st_space))
    sw.Space.sw_steps;
  let rec betweens = function
    | a :: (b :: _ as rest) ->
        let mid = (a.Space.st_space +. b.Space.st_space) /. 2. in
        if mid > a.Space.st_space && mid < b.Space.st_space then
          checkf "cost_at between steps is the previous step's cost"
            a.Space.st_cost
            (Space.cost_at sw ~budget:mid);
        (* Just below a step the extra page is not affordable yet. *)
        checkf "cost_at just below a step is the previous step's cost"
          a.Space.st_cost
          (Space.cost_at sw ~budget:(b.Space.st_space -. 0.5));
        betweens rest
    | _ -> ()
  in
  betweens sw.Space.sw_steps;
  checkf "cost_at beyond the last step is the unconstrained optimum"
    sw.Space.sw_unconstrained_cost
    (Space.cost_at sw ~budget:1e12);
  checkb "cost_at below the first step is unachievable" true
    (Space.cost_at sw ~budget:(-1.) = Float.infinity)

(* ------------------------------------------------------------------ *)
(* feature_order: Figure 11's numbering. *)

let test_feature_order () =
  let _, sw = Lazy.force sweeps in
  let order = Space.feature_order sw in
  checkb "a multi-step staircase introduces features" true (order <> []);
  let names = List.map fst order in
  checki "feature_order never lists a feature twice"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  let rec nondecreasing = function
    | (_, b1) :: ((_, b2) :: _ as rest) ->
        checkb "entry budgets are non-decreasing" true (b1 <= b2);
        nondecreasing rest
    | _ -> ()
  in
  nondecreasing order;
  List.iter
    (fun (name, budget) ->
      let step =
        List.find_opt (fun st -> st.Space.st_space = budget) sw.Space.sw_steps
      in
      match step with
      | None -> Alcotest.failf "feature %s enters off the staircase" name
      | Some st ->
          checkb "the entering feature is among the step's additions" true
            (List.mem name st.Space.st_added))
    order

let test_feature_order_two_relation () =
  (* On the smallest instance the optimum materializes the selection view,
     so exactly its features enter the design. *)
  let sw2, _ = Lazy.force sweeps in
  let order = Space.feature_order sw2 in
  checkb "two_relation's optimum materializes something" true (order <> [])

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "space"
    [
      ( "staircase",
        [
          Alcotest.test_case "shape invariants" `Quick test_staircase_shape;
          Alcotest.test_case "unconstrained = A*" `Quick
            test_unconstrained_matches_astar;
        ] );
      ("cost_at", [ Alcotest.test_case "staircase lookup" `Quick test_cost_at ]);
      ( "feature_order",
        [
          Alcotest.test_case "figure 11 numbering" `Quick test_feature_order;
          Alcotest.test_case "two_relation" `Quick
            test_feature_order_two_relation;
        ] );
    ]
