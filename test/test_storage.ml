(* Tests for vis_storage: the LRU buffer pool's I/O accounting, heap files,
   and the B+-tree (unit tests plus randomized comparison against a
   reference model). *)

module Iostats = Vis_storage.Iostats
module Buffer_pool = Vis_storage.Buffer_pool
module Heap_file = Vis_storage.Heap_file
module Btree = Vis_storage.Btree
module Faults = Vis_storage.Faults

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let fresh_pool ?(capacity = 8) () =
  let stats = Iostats.create () in
  (Buffer_pool.create ~capacity ~stats, stats)

(* ------------------------------------------------------------------ *)
(* Buffer pool. *)

let test_pool_hits_and_misses () =
  let pool, stats = fresh_pool ~capacity:2 () in
  let a = Buffer_pool.fresh_page pool in
  let b = Buffer_pool.fresh_page pool in
  Buffer_pool.touch pool a ~dirty:false;
  Buffer_pool.touch pool a ~dirty:false;
  checki "one read for two touches" 1 (Iostats.reads stats);
  checki "two accesses" 2 (Iostats.accesses stats);
  Buffer_pool.touch pool b ~dirty:false;
  checki "second page misses" 2 (Iostats.reads stats)

let test_pool_lru_eviction () =
  let pool, stats = fresh_pool ~capacity:2 () in
  let pages = Array.init 3 (fun _ -> Buffer_pool.fresh_page pool) in
  Buffer_pool.touch pool pages.(0) ~dirty:false;
  Buffer_pool.touch pool pages.(1) ~dirty:false;
  (* Re-touch page 0 so page 1 is the LRU victim. *)
  Buffer_pool.touch pool pages.(0) ~dirty:false;
  Buffer_pool.touch pool pages.(2) ~dirty:false;
  checkb "page 1 evicted" false (Buffer_pool.resident pool pages.(1));
  checkb "page 0 kept" true (Buffer_pool.resident pool pages.(0));
  checki "clean evictions write nothing" 0 (Iostats.writes stats)

let test_pool_dirty_writeback () =
  let pool, stats = fresh_pool ~capacity:1 () in
  let a = Buffer_pool.fresh_page pool in
  let b = Buffer_pool.fresh_page pool in
  Buffer_pool.touch pool a ~dirty:true;
  Buffer_pool.touch pool b ~dirty:false;
  checki "dirty eviction writes" 1 (Iostats.writes stats);
  Buffer_pool.touch pool b ~dirty:true;
  Buffer_pool.flush pool;
  checki "flush writes dirty page" 2 (Iostats.writes stats);
  checkb "nothing resident" false (Buffer_pool.resident pool b)

let test_pool_touch_new () =
  let pool, stats = fresh_pool () in
  let a = Buffer_pool.fresh_page pool in
  Buffer_pool.touch_new pool a;
  checki "no read for a fresh page" 0 (Iostats.reads stats);
  Buffer_pool.flush pool;
  checki "but it is written back" 1 (Iostats.writes stats)

let test_pool_discard () =
  let pool, stats = fresh_pool () in
  let a = Buffer_pool.fresh_page pool in
  Buffer_pool.touch pool a ~dirty:true;
  Buffer_pool.discard pool a;
  Buffer_pool.flush pool;
  checki "discarded page not written" 0 (Iostats.writes stats)

(* Pinned pages sit out eviction entirely; when everything is pinned the
   pool grows past capacity rather than evicting. *)
let test_pool_pin_skips_eviction () =
  let pool, stats = fresh_pool ~capacity:2 () in
  let pages = Array.init 3 (fun _ -> Buffer_pool.fresh_page pool) in
  Buffer_pool.pin pool pages.(0);
  Buffer_pool.touch pool pages.(1) ~dirty:false;
  (* pages.(0) is LRU but pinned: the victim must be pages.(1). *)
  Buffer_pool.touch pool pages.(2) ~dirty:false;
  checkb "pinned LRU page survives" true (Buffer_pool.resident pool pages.(0));
  checkb "unpinned page evicted instead" false (Buffer_pool.resident pool pages.(1));
  Buffer_pool.unpin pool pages.(0);
  Buffer_pool.touch pool pages.(1) ~dirty:false;
  checkb "after unpin it can be evicted" false (Buffer_pool.resident pool pages.(0));
  checki "pin counted its miss" 4 (Iostats.reads stats)

let test_pool_all_pinned_overflows () =
  let pool, _ = fresh_pool ~capacity:1 () in
  let a = Buffer_pool.fresh_page pool in
  let b = Buffer_pool.fresh_page pool in
  Buffer_pool.pin pool a;
  Buffer_pool.touch pool b ~dirty:false;
  checkb "pinned page stays" true (Buffer_pool.resident pool a);
  checkb "new page admitted over capacity" true (Buffer_pool.resident pool b)

let test_pool_pin_refcount () =
  let pool, _ = fresh_pool () in
  let a = Buffer_pool.fresh_page pool in
  Buffer_pool.pin pool a;
  Buffer_pool.pin pool a;
  Buffer_pool.unpin pool a;
  checkb "still pinned after one unpin" true (Buffer_pool.pinned pool a);
  Buffer_pool.unpin pool a;
  checkb "fully unpinned" false (Buffer_pool.pinned pool a);
  Alcotest.check_raises "unpin unpinned"
    (Invalid_argument "Buffer_pool.unpin: page not pinned") (fun () ->
      Buffer_pool.unpin pool a);
  Alcotest.check_raises "unpin non-resident"
    (Invalid_argument "Buffer_pool.unpin: page not resident") (fun () ->
      Buffer_pool.unpin pool (Buffer_pool.fresh_page pool))

let test_pool_flush_ignores_pins () =
  let pool, stats = fresh_pool () in
  let a = Buffer_pool.fresh_page pool in
  Buffer_pool.touch_new pool a;
  Buffer_pool.pin pool a;
  Buffer_pool.flush pool;
  checkb "flush evicts even pinned pages" false (Buffer_pool.resident pool a);
  checki "dirty pinned page written" 1 (Iostats.writes stats)

let test_pool_write_back () =
  let pool, stats = fresh_pool () in
  let a = Buffer_pool.fresh_page pool in
  Buffer_pool.touch_new pool a;
  Buffer_pool.write_back pool a;
  checki "forced write counted" 1 (Iostats.writes stats);
  checki "tallied as a WAL write" 1 (Iostats.wal_writes stats);
  Buffer_pool.write_back pool a;
  checki "clean page not rewritten" 1 (Iostats.writes stats);
  Buffer_pool.flush pool;
  checki "flush finds it clean" 1 (Iostats.writes stats)

(* ------------------------------------------------------------------ *)
(* Fault plans. *)

let test_faults_nth_crash_once () =
  let pool, stats = fresh_pool ~capacity:1 () in
  let plan =
    Faults.make [ Faults.Fail_nth { op = Some Faults.Read; n = 2; kind = Faults.Crash } ]
  in
  Buffer_pool.set_faults pool plan;
  Faults.arm plan;
  let a = Buffer_pool.fresh_page pool in
  let b = Buffer_pool.fresh_page pool in
  Buffer_pool.touch pool a ~dirty:false;
  (match Buffer_pool.touch pool b ~dirty:false with
  | exception Faults.Injected f ->
      checkb "read fault" true (f.Faults.f_op = Faults.Read);
      checkb "crash kind" true (f.Faults.f_kind = Faults.Crash)
  | () -> Alcotest.fail "second read should crash");
  (* The failed read never happened: no state change, no read counted. *)
  checkb "faulted page not admitted" false (Buffer_pool.resident pool b);
  checki "only the first read counted" 1 (Iostats.reads stats);
  (* One-shot: the retried operation succeeds. *)
  Buffer_pool.touch pool b ~dirty:false;
  checkb "retry succeeds" true (Buffer_pool.resident pool b);
  checki "faults surfaced" 1 (Faults.injected plan)

let test_faults_transient_retries () =
  let pool, _ = fresh_pool ~capacity:1 () in
  let plan =
    Faults.make
      [ Faults.Fail_nth { op = Some Faults.Alloc; n = 1; kind = Faults.Transient } ]
  in
  Buffer_pool.set_faults pool plan;
  Faults.arm plan;
  (* The first alloc hits the transient fault, retries in place (the Nth
     counter has moved on), and succeeds without surfacing anything. *)
  let a = Buffer_pool.fresh_page pool in
  checki "allocation completed" 0 a;
  checki "nothing surfaced" 0 (Faults.injected plan);
  checkb "but a retry happened" true (Faults.retries plan >= 1);
  checkb "and backoff time accrued" true (Faults.elapsed_ms plan > 0.0)

let test_faults_transient_escalates () =
  let pool, _ = fresh_pool ~capacity:1 () in
  let policy = { Faults.default_policy with Faults.max_retries = 3 } in
  let plan =
    Faults.make ~policy
      [ Faults.Fail_prob { op = Some Faults.Alloc; p = 1.0; kind = Faults.Transient } ]
  in
  Buffer_pool.set_faults pool plan;
  Faults.arm plan;
  (match Buffer_pool.fresh_page pool with
  | exception Faults.Injected f ->
      checkb "escalated as transient" true (f.Faults.f_kind = Faults.Transient);
      checki "burned the whole retry budget" 3 f.Faults.f_retries
  | _ -> Alcotest.fail "p=1.0 transient must escalate");
  checki "surfaced once" 1 (Faults.injected plan);
  (* Disarmed plans never inject. *)
  Faults.disarm plan;
  checki "disarmed alloc fine" 0 (Buffer_pool.fresh_page pool)

let test_faults_prob_deterministic () =
  let run () =
    let pool, _ = fresh_pool ~capacity:2 () in
    let plan =
      Faults.make ~seed:7
        [ Faults.Fail_prob { op = None; p = 0.3; kind = Faults.Crash } ]
    in
    Buffer_pool.set_faults pool plan;
    Faults.arm plan;
    let trace = ref [] in
    for i = 0 to 49 do
      match Buffer_pool.touch pool (i mod 5) ~dirty:false with
      | () -> trace := `Ok :: !trace
      | exception Faults.Injected f -> trace := `Fault f.Faults.f_seq :: !trace
    done;
    !trace
  in
  checkb "same seed, same fault trace" true (run () = run ())

(* LRU property: a working set that fits in the pool faults exactly once per
   page, however often it is re-touched. *)
let prop_pool_no_capacity_misses =
  QCheck2.Test.make ~name:"pool: working set <= capacity never re-faults"
    ~count:100
    QCheck2.Gen.(pair (int_range 1 16) (int_range 1 8))
    (fun (capacity, distinct) ->
      QCheck2.assume (distinct <= capacity);
      let pool, stats = fresh_pool ~capacity () in
      let pages = Array.init distinct (fun _ -> Buffer_pool.fresh_page pool) in
      for _round = 1 to 5 do
        Array.iter (fun p -> Buffer_pool.touch pool p ~dirty:false) pages
      done;
      Iostats.reads stats = distinct)

(* ------------------------------------------------------------------ *)
(* Heap files. *)

let test_heap_roundtrip () =
  let pool, _ = fresh_pool ~capacity:64 () in
  let h = Heap_file.create pool ~tuples_per_page:4 in
  let rids = List.init 10 (fun i -> Heap_file.append h [| i; 10 * i |]) in
  checki "10 tuples" 10 (Heap_file.n_tuples h);
  checki "3 pages of 4" 3 (Heap_file.n_pages h);
  List.iteri
    (fun i rid ->
      match Heap_file.get h rid with
      | Some t -> checki "value" (10 * i) t.(1)
      | None -> Alcotest.fail "missing tuple")
    rids;
  (* Appends copy the tuple, so later mutation of the source is invisible. *)
  let src = [| 99; 99 |] in
  let rid = Heap_file.append h src in
  src.(0) <- 0;
  checki "copied on append" 99 (Option.get (Heap_file.get h rid)).(0)

let test_heap_delete_update () =
  let pool, _ = fresh_pool ~capacity:64 () in
  let h = Heap_file.create pool ~tuples_per_page:4 in
  let rids = Array.init 8 (fun i -> Heap_file.append h [| i |]) in
  checkb "delete" true (Heap_file.delete h rids.(3));
  checkb "double delete" false (Heap_file.delete h rids.(3));
  checki "count after delete" 7 (Heap_file.n_tuples h);
  checkb "update live" true (Heap_file.update h rids.(4) [| 444 |]);
  checkb "update dead" false (Heap_file.update h rids.(3) [| 0 |]);
  checki "updated" 444 (Option.get (Heap_file.get h rids.(4))).(0);
  let seen = ref [] in
  Heap_file.scan h ~f:(fun _ t -> seen := t.(0) :: !seen);
  Alcotest.(check (list int)) "scan skips holes" [ 0; 1; 2; 444; 5; 6; 7 ]
    (List.rev !seen)

let test_heap_scan_io () =
  let stats = Iostats.create () in
  let pool = Buffer_pool.create ~capacity:2 ~stats in
  let h = Heap_file.create pool ~tuples_per_page:10 in
  for i = 0 to 99 do
    ignore (Heap_file.append h [| i |])
  done;
  Buffer_pool.flush pool;
  Iostats.reset stats;
  Heap_file.scan h ~f:(fun _ _ -> ());
  checki "scan reads every page once" 10 (Iostats.reads stats)

(* Undo primitives used by crash recovery. *)
let test_heap_undo_roundtrip () =
  let pool, _ = fresh_pool ~capacity:64 () in
  let h = Heap_file.create pool ~tuples_per_page:2 in
  checkb "next_rid on empty file" true
    (Heap_file.next_rid h = { Heap_file.rid_page = 0; rid_slot = 0 });
  let r0 = Heap_file.append h [| 0 |] in
  let predicted = Heap_file.next_rid h in
  let r1 = Heap_file.append h [| 1 |] in
  checkb "next_rid predicted the append" true (predicted = r1);
  (* Third append grows a page; truncating it drops the page again. *)
  let r2 = Heap_file.append h [| 2 |] in
  checki "two pages" 2 (Heap_file.n_pages h);
  checkb "truncate tail" true (Heap_file.truncate_last h r2);
  checki "fresh page dropped" 1 (Heap_file.n_pages h);
  checki "two tuples left" 2 (Heap_file.n_tuples h);
  (* A predicted-but-never-executed append is a tolerated no-op. *)
  checkb "phantom append ignored" false (Heap_file.truncate_last h (Heap_file.next_rid h));
  (* Delete then restore puts the exact tuple back in its slot. *)
  checkb "delete" true (Heap_file.delete h r0);
  checkb "restore" true (Heap_file.restore h r0 [| 0 |]);
  checkb "restore occupied slot refused" false (Heap_file.restore h r0 [| 9 |]);
  checki "value back" 0 (Option.get (Heap_file.get h r0)).(0);
  checkb "truncate then re-append round-trips" true
    (Heap_file.truncate_last h r1 && Heap_file.append h [| 1 |] = r1)

let test_heap_bad_rid () =
  let pool, _ = fresh_pool () in
  let h = Heap_file.create pool ~tuples_per_page:4 in
  ignore (Heap_file.append h [| 1 |]);
  Alcotest.check_raises "bad rid" (Invalid_argument "Heap_file.get: bad rid")
    (fun () ->
      ignore (Heap_file.get h { Heap_file.rid_page = 5; rid_slot = 0 }))

(* A dirty page evicted from a one-frame pool must be written back at the
   moment of eviction, and its contents must survive the round trip through
   the arena when the page is faulted back in. *)
let test_heap_dirty_eviction_write_ordering () =
  let pool, stats = fresh_pool ~capacity:1 () in
  let h = Heap_file.create pool ~tuples_per_page:2 in
  let rids = Array.init 8 (fun i -> Heap_file.append h [| i; 100 + i |]) in
  (* Four pages were dirtied in sequence through one frame: opening each new
     page evicts the previous dirty one, which must be flushed right then. *)
  checki "dirty evictions wrote back" 3 (Iostats.writes stats);
  checki "evictions counted" 3 (Iostats.pool_evictions stats);
  checki "appends never read" 0 (Iostats.reads stats);
  (* Every tuple re-read faults its page back in; the values must be the
     ones written before eviction, not a stale or zeroed frame. *)
  Array.iteri
    (fun i r ->
      match Heap_file.get h r with
      | Some t -> checki "value survived eviction" (100 + i) t.(1)
      | None -> Alcotest.fail "tuple lost across eviction")
    rids;
  checkb "re-reads were misses" true (Iostats.pool_misses stats >= 4);
  (* The tail page is clean after its own eviction/re-read cycle, so a
     final flush forces only pages dirtied since. *)
  let w = Iostats.writes stats in
  Buffer_pool.flush pool;
  checkb "flush wrote nothing new for clean frames" true
    (Iostats.writes stats = w)

(* Appends that cross a page boundary: rid arithmetic, page growth, arena
   growth, and the no-backfill discipline at the edges. *)
let test_heap_append_across_page_boundary () =
  let pool, _ = fresh_pool ~capacity:16 () in
  let h = Heap_file.create pool ~tuples_per_page:3 in
  let rids = Array.init 7 (fun i -> Heap_file.append h [| i |]) in
  checki "seven tuples span three pages" 3 (Heap_file.n_pages h);
  Array.iteri
    (fun i r ->
      checki "rid page" (i / 3) r.Heap_file.rid_page;
      checki "rid slot" (i mod 3) r.Heap_file.rid_slot)
    rids;
  checkb "next rid continues on the tail page" true
    (Heap_file.next_rid h = { Heap_file.rid_page = 2; rid_slot = 1 });
  (* A hole in a full earlier page is never backfilled: the next append
     still lands at the tail. *)
  checkb "delete mid-file" true (Heap_file.delete h rids.(1));
  let r7 = Heap_file.append h [| 7 |] in
  checkb "append ignores holes" true
    (r7 = { Heap_file.rid_page = 2; rid_slot = 1 });
  checki "no page added for tail append" 3 (Heap_file.n_pages h);
  (* Filling the tail page does not grow the arena; opening the next page
     does. *)
  let words_before = Heap_file.arena_words h in
  ignore (Heap_file.append h [| 8 |]);
  checki "tail fill reuses the page block" words_before
    (Heap_file.arena_words h);
  ignore (Heap_file.append h [| 9 |]);
  checki "boundary append opens page four" 4 (Heap_file.n_pages h);
  checkb "arena grew across the boundary" true
    (Heap_file.arena_words h > words_before);
  checkb "first tuple on the new page" true
    (Heap_file.next_rid h = { Heap_file.rid_page = 3; rid_slot = 1 });
  (* Truncating the only tuple on the new page drops the page again. *)
  checkb "truncate boundary tuple" true
    (Heap_file.truncate_last h { Heap_file.rid_page = 3; rid_slot = 0 });
  checki "fresh page dropped" 3 (Heap_file.n_pages h);
  (* Arity was fixed by the first append and boundary crossings keep it. *)
  Alcotest.check_raises "arity mismatch across boundary"
    (Invalid_argument "Heap_file: arity mismatch") (fun () ->
      ignore (Heap_file.append h [| 1; 2 |]))

(* ------------------------------------------------------------------ *)
(* B+-tree. *)

let rid i = { Heap_file.rid_page = i; rid_slot = i mod 7 }

let check_ok t =
  match Btree.check t with Ok () -> () | Error msg -> Alcotest.fail msg

let test_btree_empty () =
  let pool, _ = fresh_pool ~capacity:16 () in
  let t = Btree.create pool ~fanout:4 in
  check_ok t;
  checki "empty length" 0 (Btree.length t);
  checki "empty height" 1 (Btree.height t);
  Alcotest.(check (list int)) "lookup on empty" []
    (List.map (fun r -> r.Heap_file.rid_page) (Btree.lookup t ~key:3));
  Alcotest.(check (list int)) "range on empty" []
    (List.map fst (Btree.range t ~lo:min_int ~hi:max_int));
  checkb "remove on empty" false (Btree.remove t ~key:3 (rid 0));
  checkb "mem on empty" false (Btree.mem t ~key:3 (rid 0));
  let visited = ref 0 in
  Btree.iter t ~f:(fun _ _ -> incr visited);
  checki "iter on empty visits nothing" 0 !visited

let test_btree_duplicate_entry_rejected () =
  let pool, _ = fresh_pool ~capacity:16 () in
  let t = Btree.create pool ~fanout:4 in
  Btree.insert t ~key:7 (rid 1);
  checkb "mem finds it" true (Btree.mem t ~key:7 (rid 1));
  checkb "same key, other rid is fine" true
    (match Btree.insert t ~key:7 (rid 2) with () -> true);
  (match Btree.insert t ~key:7 (rid 1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "exact duplicate entry must be rejected");
  check_ok t;
  checki "rejected insert left no trace" 2 (Btree.length t)

let test_btree_basics () =
  let pool, _ = fresh_pool ~capacity:256 () in
  let t = Btree.create pool ~fanout:4 in
  for i = 0 to 99 do
    Btree.insert t ~key:(i * 3 mod 101) (rid i)
  done;
  check_ok t;
  checki "100 entries" 100 (Btree.length t);
  checkb "height grew" true (Btree.height t > 1);
  for i = 0 to 99 do
    let key = i * 3 mod 101 in
    checkb "lookup finds rid" true (List.mem (rid i) (Btree.lookup t ~key))
  done;
  checki "missing key" 0 (List.length (Btree.lookup t ~key:777))

let test_btree_duplicates () =
  let pool, _ = fresh_pool ~capacity:256 () in
  let t = Btree.create pool ~fanout:4 in
  for i = 0 to 30 do
    Btree.insert t ~key:5 (rid i)
  done;
  check_ok t;
  checki "all duplicates found" 31 (List.length (Btree.lookup t ~key:5));
  checkb "remove one" true (Btree.remove t ~key:5 (rid 17));
  checkb "remove again fails" false (Btree.remove t ~key:5 (rid 17));
  checki "30 left" 30 (List.length (Btree.lookup t ~key:5));
  check_ok t

let test_btree_range () =
  let pool, _ = fresh_pool ~capacity:256 () in
  let t = Btree.create pool ~fanout:4 in
  List.iter (fun k -> Btree.insert t ~key:k (rid k)) [ 5; 1; 9; 3; 7; 2; 8 ];
  let keys = List.map fst (Btree.range t ~lo:3 ~hi:8) in
  Alcotest.(check (list int)) "range sorted" [ 3; 5; 7; 8 ] keys;
  Alcotest.(check (list int)) "empty range" []
    (List.map fst (Btree.range t ~lo:10 ~hi:20));
  Alcotest.(check (list int)) "inverted range" []
    (List.map fst (Btree.range t ~lo:8 ~hi:3))

let test_btree_iter_sorted () =
  let pool, _ = fresh_pool ~capacity:256 () in
  let t = Btree.create pool ~fanout:4 in
  for i = 99 downto 0 do
    Btree.insert t ~key:i (rid i)
  done;
  let keys = ref [] in
  Btree.iter t ~f:(fun k _ -> keys := k :: !keys);
  Alcotest.(check (list int)) "iter in key order" (List.init 100 Fun.id)
    (List.rev !keys)

let test_btree_io_counted () =
  let stats = Iostats.create () in
  let pool = Buffer_pool.create ~capacity:4 ~stats in
  let t = Btree.create pool ~fanout:8 in
  for i = 0 to 999 do
    Btree.insert t ~key:i (rid i)
  done;
  Buffer_pool.flush pool;
  Iostats.reset stats;
  ignore (Btree.lookup t ~key:500);
  (* One root-to-leaf path, plus possibly peeking at the next leaf when the
     probe lands at a leaf boundary. *)
  checkb "lookup reads at most height+1 pages" true
    (Iostats.reads stats <= Btree.height t + 1);
  checkb "lookup reads at least one page" true (Iostats.reads stats >= 1)

(* Randomized comparison against a reference association model under mixed
   inserts, removes, and lookups; structural invariants re-checked at the
   end. *)
let prop_btree_model =
  let op_gen =
    QCheck2.Gen.(pair (int_bound 2) (pair (int_bound 50) (int_bound 1000)))
  in
  QCheck2.Test.make ~name:"btree: agrees with a reference model" ~count:60
    QCheck2.Gen.(pair (int_range 4 12) (list_size (int_bound 400) op_gen))
    (fun (fanout, ops) ->
      let pool, _ = fresh_pool ~capacity:512 () in
      let t = Btree.create pool ~fanout in
      let model : (int, Heap_file.rid list) Hashtbl.t = Hashtbl.create 64 in
      let model_get k = Option.value ~default:[] (Hashtbl.find_opt model k) in
      let ok = ref true in
      List.iter
        (fun (op, (key, salt)) ->
          match op with
          | 0 ->
              let r = rid salt in
              if List.mem r (model_get key) then begin
                (* Exact duplicates are rejected. *)
                match Btree.insert t ~key r with
                | exception Invalid_argument _ -> ()
                | () -> ok := false
              end
              else begin
                Btree.insert t ~key r;
                Hashtbl.replace model key (r :: model_get key)
              end
          | 1 -> (
              match model_get key with
              | [] -> if Btree.remove t ~key (rid salt) then ok := false
              | r :: rest ->
                  if Btree.remove t ~key r then Hashtbl.replace model key rest
                  else ok := false)
          | _ ->
              let got = List.sort compare (Btree.lookup t ~key) in
              let want = List.sort compare (model_get key) in
              if got <> want then ok := false)
        ops;
      let total = Hashtbl.fold (fun _ l acc -> acc + List.length l) model 0 in
      Btree.check t = Ok () && !ok && Btree.length t = total)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "vis_storage"
    [
      ( "buffer pool",
        [
          Alcotest.test_case "hits and misses" `Quick test_pool_hits_and_misses;
          Alcotest.test_case "LRU eviction" `Quick test_pool_lru_eviction;
          Alcotest.test_case "dirty write-back" `Quick test_pool_dirty_writeback;
          Alcotest.test_case "touch_new" `Quick test_pool_touch_new;
          Alcotest.test_case "discard" `Quick test_pool_discard;
          Alcotest.test_case "pin skips eviction" `Quick test_pool_pin_skips_eviction;
          Alcotest.test_case "all pinned overflows" `Quick
            test_pool_all_pinned_overflows;
          Alcotest.test_case "pin refcount" `Quick test_pool_pin_refcount;
          Alcotest.test_case "flush ignores pins" `Quick test_pool_flush_ignores_pins;
          Alcotest.test_case "write_back" `Quick test_pool_write_back;
        ]
        @ qt [ prop_pool_no_capacity_misses ] );
      ( "faults",
        [
          Alcotest.test_case "nth crash fires once" `Quick test_faults_nth_crash_once;
          Alcotest.test_case "transient retries in place" `Quick
            test_faults_transient_retries;
          Alcotest.test_case "transient escalates" `Quick
            test_faults_transient_escalates;
          Alcotest.test_case "probability is seeded" `Quick
            test_faults_prob_deterministic;
        ] );
      ( "heap file",
        [
          Alcotest.test_case "append and get" `Quick test_heap_roundtrip;
          Alcotest.test_case "delete and update" `Quick test_heap_delete_update;
          Alcotest.test_case "scan I/O" `Quick test_heap_scan_io;
          Alcotest.test_case "undo primitives" `Quick test_heap_undo_roundtrip;
          Alcotest.test_case "bad rid" `Quick test_heap_bad_rid;
          Alcotest.test_case "dirty eviction write ordering" `Quick
            test_heap_dirty_eviction_write_ordering;
          Alcotest.test_case "append across page boundary" `Quick
            test_heap_append_across_page_boundary;
        ] );
      ( "btree",
        [
          Alcotest.test_case "empty tree" `Quick test_btree_empty;
          Alcotest.test_case "duplicate entry rejected" `Quick
            test_btree_duplicate_entry_rejected;
          Alcotest.test_case "basics" `Quick test_btree_basics;
          Alcotest.test_case "duplicates" `Quick test_btree_duplicates;
          Alcotest.test_case "range" `Quick test_btree_range;
          Alcotest.test_case "iter sorted" `Quick test_btree_iter_sorted;
          Alcotest.test_case "I/O counted" `Quick test_btree_io_counted;
        ]
        @ qt [ prop_btree_model ] );
    ]
