(* Tests for the packed configuration encoding (Config_id / Cost.encoding):
   mask <-> feature-list round trips, the bit-operation laws (subset,
   applicability, closure-drop) against the symbolic Config predicates,
   the >62-feature / escape-hatch fallbacks, and bitwise agreement of the
   incremental evaluator with the structural one. *)

module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Element = Vis_costmodel.Element
module Cost = Vis_costmodel.Cost
module Problem = Vis_core.Problem
module Config_id = Vis_core.Config_id
module Schemas = Vis_workload.Schemas

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let cid_exn schema =
  match Config_id.of_problem (Problem.make schema) with
  | Some cid -> cid
  | None -> Alcotest.fail "expected a packed encoding"

(* Masks that decode to *valid* configurations (every index's view chosen)
   exercise the same states the searches visit; unrestricted masks check
   that encode/decode is a pure bijection regardless. *)
let random_mask rng cid =
  let n = Config_id.n_features cid in
  let mask = ref 0 in
  for _ = 0 to n do
    let b = Random.State.int rng n in
    if Config_id.applicable cid !mask b then
      mask := Config_id.add cid !mask b
  done;
  !mask

(* ------------------------------------------------------------------ *)
(* Round trips. *)

let test_feature_bit_round_trip () =
  List.iter
    (fun schema ->
      let cid = cid_exn schema in
      let n = Config_id.n_features cid in
      for b = 0 to n - 1 do
        match Config_id.bit_of_feature cid (Config_id.feature cid b) with
        | Some b' -> checki "feature -> bit -> feature" b b'
        | None -> Alcotest.fail "universe feature has no bit"
      done;
      (* The universe is exactly the problem's feature list, in order. *)
      let p = Config_id.problem cid in
      checki "n_features = |features|" (List.length p.Problem.features) n;
      List.iteri
        (fun i f ->
          checkb "features list order" true
            (Problem.equal_feature f (Config_id.feature cid i)))
        p.Problem.features)
    [ Schemas.two_relation (); Schemas.schema1 (); Schemas.schema2 () ]

let test_mask_config_round_trip () =
  let rng = Random.State.make [| 42 |] in
  List.iter
    (fun schema ->
      let cid = cid_exn schema in
      let n = Config_id.n_features cid in
      (* Arbitrary masks: decode then re-encode is the identity. *)
      for _ = 1 to 200 do
        let mask =
          if n >= 62 then Random.State.int rng max_int
          else Random.State.int rng (1 lsl n)
        in
        let config = Config_id.config_of_mask cid mask in
        checkb "mask -> config -> mask" true
          (Config_id.mask_of_config cid config = Some mask)
      done;
      (* Valid walks additionally decode to valid configurations. *)
      let p = Config_id.problem cid in
      for _ = 1 to 50 do
        let mask = random_mask rng cid in
        let config = Config_id.config_of_mask cid mask in
        checkb "walked mask decodes valid" true (Problem.valid_config p config)
      done;
      (* A configuration outside the universe has no mask. *)
      let foreign = Config.add_view Config.empty (Bitset.of_int 0x155555) in
      checkb "foreign view unmappable" true
        (Config_id.mask_of_config cid foreign = None))
    [ Schemas.two_relation (); Schemas.schema1 () ]

(* ------------------------------------------------------------------ *)
(* Bit-operation laws vs the symbolic Config predicates. *)

(* Set-based containment: every view and index of [a] appears in [b]. *)
let config_subset a b =
  List.for_all (fun v -> Config.has_view b v) (Config.views a)
  && List.for_all
       (fun (ix : Element.index) ->
         Config.has_index b ix.Element.ix_elem ix.Element.ix_attr)
       (Config.indexes a)

let test_subset_law () =
  let rng = Random.State.make [| 7 |] in
  List.iter
    (fun schema ->
      let cid = cid_exn schema in
      for _ = 1 to 300 do
        let ma = random_mask rng cid and mb = random_mask rng cid in
        let ca = Config_id.config_of_mask cid ma
        and cb = Config_id.config_of_mask cid mb in
        checkb "subset = set containment" (config_subset ca cb)
          (Config_id.subset ma mb);
        (* Reflexivity and the lattice identities. *)
        checkb "subset reflexive" true (Config_id.subset ma ma);
        checkb "meet below" true (Config_id.subset (ma land mb) ma);
        checkb "below join" true (Config_id.subset ma (ma lor mb))
      done)
    [ Schemas.two_relation (); Schemas.schema1 (); Schemas.schema2 () ]

let test_has_feature_has_view () =
  let rng = Random.State.make [| 11 |] in
  let schema = Schemas.schema1 () in
  let cid = cid_exn schema in
  let n = Config_id.n_features cid in
  for _ = 1 to 100 do
    let mask = random_mask rng cid in
    let config = Config_id.config_of_mask cid mask in
    for b = 0 to n - 1 do
      let expect =
        match Config_id.feature cid b with
        | Problem.F_view w -> Config.has_view config w
        | Problem.F_index ix ->
            Config.has_index config ix.Element.ix_elem ix.Element.ix_attr
        | Problem.F_compress e -> Config.has_compress config e
      in
      checkb "has_feature = symbolic membership" expect
        (Config_id.has_feature cid mask b);
      match Config_id.feature cid b with
      | Problem.F_view w ->
          checkb "has_view = Config.has_view" (Config.has_view config w)
            (Config_id.has_view cid mask w)
      | Problem.F_index _ | Problem.F_compress _ -> ()
    done
  done

let test_applicable_and_drop_closure () =
  let rng = Random.State.make [| 13 |] in
  List.iter
    (fun schema ->
      let cid = cid_exn schema in
      let p = Config_id.problem cid in
      let n = Config_id.n_features cid in
      for _ = 1 to 100 do
        let mask = random_mask rng cid in
        for b = 0 to n - 1 do
          (* Applicability: adding the feature keeps the config valid. *)
          if Config_id.applicable cid mask b then begin
            let added = Config_id.add cid mask b in
            checkb "add stays valid" true
              (Problem.valid_config p (Config_id.config_of_mask cid added));
            checkb "add contains parent" true (Config_id.subset mask added);
            (* requires(b) is the applicability condition, verbatim. *)
            checkb "requires subset of mask" true
              (Config_id.subset (Config_id.requires cid b) mask)
          end
          else
            checkb "inapplicable = missing requirement" false
              (Config_id.subset (Config_id.requires cid b) mask);
          (* Dropping a feature also drops its closure (a view takes its
             indexes with it), and the result is still valid. *)
          if Config_id.has_feature cid mask b then begin
            let dropped = Config_id.drop cid mask b in
            checkb "drop removes closure" true
              (dropped land Config_id.closure cid b = 0);
            checkb "drop stays valid" true
              (Problem.valid_config p (Config_id.config_of_mask cid dropped));
            match Config_id.feature cid b with
            | Problem.F_view w ->
                let c' = Config_id.config_of_mask cid dropped in
                checkb "dropped view gone" false (Config.has_view c' w);
                checkb "no orphan indexes" true
                  (Config.indexes_on c' (Element.View w) = [])
            | Problem.F_index _ | Problem.F_compress _ -> ()
          end
        done
      done)
    [ Schemas.two_relation (); Schemas.schema1 () ]

(* ------------------------------------------------------------------ *)
(* Fallback paths: >62 features, the escape hatch, the no-sharing
   ablation. *)

let test_too_large_fallback () =
  let p = Problem.make (Schemas.chain ~n:7 ()) in
  checkb ">62 features really" true (List.length p.Problem.features > 62);
  checkb "no encoding past 62 features" true
    (Option.is_none p.Problem.encoding);
  checkb "Config_id unavailable" true
    (Option.is_none (Config_id.of_problem p));
  (* The raw constructor reports the size in the exception. *)
  (match Cost.make_encoding p.Problem.derived (Array.of_list p.Problem.features) with
  | exception Cost.Encoding_too_large n ->
      checki "exception carries the count" (List.length p.Problem.features) n
  | _ -> Alcotest.fail "make_encoding accepted > 62 features");
  (* The structural path still searches the schema fine. *)
  let g = Vis_core.Greedy.search p in
  checkb "structural greedy works" true (Problem.valid_config p g.Vis_core.Greedy.best)

let test_escape_hatches_disable_encoding () =
  let schema = Schemas.two_relation () in
  checkb "slow_cost disables encoding" true
    (Option.is_none (Problem.make ~slow_cost:true schema).Problem.encoding);
  checkb "no-sharing ablation disables encoding" true
    (Option.is_none (Problem.make ~share_cache:false schema).Problem.encoding);
  checkb "default has encoding" true
    (Option.is_some (Problem.make schema).Problem.encoding)

(* ------------------------------------------------------------------ *)
(* The packed evaluator agrees bitwise with the structural one. *)

let test_fast_vs_slow_totals () =
  let rng = Random.State.make [| 17 |] in
  List.iter
    (fun schema ->
      let cid = cid_exn schema in
      let slow = Problem.make ~slow_cost:true schema in
      let prev = ref (Config_id.eval cid 0) in
      checkb "empty total agrees" true
        (Cost.ieval_total !prev = Problem.total slow Config.empty);
      for _ = 1 to 60 do
        let mask = random_mask rng cid in
        let scratch = Config_id.eval cid mask in
        let delta = Config_id.eval_from cid !prev mask in
        prev := delta;
        let structural =
          Problem.total slow (Config_id.config_of_mask cid mask)
        in
        checkb "scratch = structural (bitwise)" true
          (Cost.ieval_total scratch = structural);
        checkb "delta = structural (bitwise)" true
          (Cost.ieval_total delta = structural);
        checki "ieval remembers its mask" mask (Cost.ieval_mask delta)
      done)
    [ Schemas.two_relation (); Schemas.schema1 (); Schemas.chain ~n:4 () ]

let () =
  Alcotest.run "config_id"
    [
      ( "round trips",
        [
          Alcotest.test_case "feature <-> bit" `Quick
            test_feature_bit_round_trip;
          Alcotest.test_case "mask <-> config" `Quick
            test_mask_config_round_trip;
        ] );
      ( "bit laws",
        [
          Alcotest.test_case "subset vs set containment" `Quick
            test_subset_law;
          Alcotest.test_case "has_feature / has_view" `Quick
            test_has_feature_has_view;
          Alcotest.test_case "applicable / drop closure" `Quick
            test_applicable_and_drop_closure;
        ] );
      ( "fallbacks",
        [
          Alcotest.test_case "> 62 features" `Quick test_too_large_fallback;
          Alcotest.test_case "escape hatches" `Quick
            test_escape_hatches_disable_encoding;
        ] );
      ( "evaluator agreement",
        [
          Alcotest.test_case "fast = slow, bitwise" `Quick
            test_fast_vs_slow_totals;
        ] );
    ]
