(* Tests for the fault-injection + crash-recovery subsystem: the WAL's
   append/undo discipline, WAL-protected refresh with no faults (overhead,
   bit-identity with the unprotected path), rollback to the exact pre-batch
   state, crash-retry, transient in-place retry, graceful degradation to
   view recomputation, and determinism of seeded fault plans. *)

module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Element = Vis_costmodel.Element
module Datagen = Vis_workload.Datagen
module Warehouse = Vis_maintenance.Warehouse
module Refresh = Vis_maintenance.Refresh
module Validate = Vis_maintenance.Validate
module Iostats = Vis_storage.Iostats
module Buffer_pool = Vis_storage.Buffer_pool
module Heap_file = Vis_storage.Heap_file
module Faults = Vis_storage.Faults
module Wal = Vis_storage.Wal

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checks = Alcotest.(check string)

let schema = Vis_workload.Schemas.validation ()

(* A design with a supporting view and an index, so the protected refresh
   exercises index maintenance and saved-delta plans too. *)
let config () =
  let st = Bitset.of_list [ 1; 2 ] in
  let ix =
    {
      Element.ix_elem = Element.View (Schema.all_relations schema);
      ix_attr = { Element.a_rel = 2; a_name = "T0" };
    }
  in
  Config.make ~views:[ st ] ~indexes:[ ix ]

(* Two structurally identical worlds from one seed: a warehouse and the
   batch to apply to it. *)
let world ?(seed = 21) () =
  let rng = Random.State.make [| seed |] in
  let ds = Datagen.generate ~rng schema in
  let w = Warehouse.build schema (config ()) ds in
  let batch = Datagen.deltas ~rng schema ds in
  (w, batch)

let ok_exn = function
  | Ok v -> v
  | Error (e : Refresh.error) ->
      Alcotest.failf "protected refresh failed: %a" Faults.pp_fault
        e.Refresh.err_fault

(* ------------------------------------------------------------------ *)
(* WAL mechanics. *)

let test_wal_roundtrip () =
  let stats = Iostats.create () in
  let pool = Buffer_pool.create ~capacity:8 ~stats in
  let wal = Wal.create pool ~page_bytes:64 in
  checkb "empty log: nothing unfinished" true (Wal.unfinished wal = []);
  Wal.append wal Wal.Begin;
  let rid = { Heap_file.rid_page = 0; rid_slot = 1 } in
  Wal.append wal (Wal.Ins { table = 0; rid; tuple = [| 1; 2 |] });
  Wal.append wal (Wal.Del { table = 1; rid; before = [| 3 |] });
  checki "three records" 3 (Wal.n_records wal);
  (match Wal.unfinished wal with
  | [ Wal.Del _; Wal.Ins _ ] -> ()
  | l -> Alcotest.failf "unexpected unfinished shape (%d records)" (List.length l));
  checkb "in flight" true (Wal.in_flight wal);
  Wal.append wal Wal.Commit;
  (* An unforced Commit is not durable: the batch still counts as in flight
     and its records still roll back until [sync] covers the Commit. *)
  checkb "unforced commit still rolls back" true (Wal.unfinished wal <> []);
  checkb "unforced commit still in flight" true (Wal.in_flight wal);
  Wal.sync wal;
  checkb "sync forced the tail" true (Iostats.wal_writes stats >= 1);
  checkb "forced commit: nothing unfinished" true (Wal.unfinished wal = []);
  checkb "forced commit: not in flight" false (Wal.in_flight wal);
  Wal.checkpoint wal;
  checki "checkpoint truncates" 0 (Wal.n_records wal);
  checkb "no longer in flight" false (Wal.in_flight wal);
  checki "lifetime records survive checkpoint" 4 (Wal.total_records wal)

let test_wal_page_spill () =
  let stats = Iostats.create () in
  let pool = Buffer_pool.create ~capacity:4 ~stats in
  (* 64-byte pages hold two 4-word records: appending five Begin-sized
     records and one wide record must spill across pages, sealing each full
     page with a forced write. *)
  let wal = Wal.create pool ~page_bytes:64 in
  let rid = { Heap_file.rid_page = 0; rid_slot = 0 } in
  for _ = 1 to 5 do
    Wal.append wal (Wal.Ins { table = 0; rid; tuple = [||] })
  done;
  checkb "spilled to pages" true (Wal.total_pages wal >= 3);
  Wal.append wal (Wal.Ins { table = 0; rid; tuple = Array.make 20 7 });
  checkb "wide record takes multiple pages" true (Wal.total_pages wal >= 5);
  checkb "tail pinned" true
    (match Wal.page_gids wal with
    | gid :: _ -> Buffer_pool.pinned pool gid
    | [] -> false)

(* ------------------------------------------------------------------ *)
(* Protected refresh without faults. *)

let test_protected_matches_unprotected () =
  let w1, batch1 = world () in
  let w2, batch2 = world () in
  let r1 = Refresh.run w1 batch1 in
  let r2, fs = ok_exn (Refresh.run_protected w2 batch2) in
  checks "bit-identical stored state" (Warehouse.signature w1)
    (Warehouse.signature w2);
  checkb "no attempts wasted" true (fs.Refresh.fs_attempts = 1);
  checkb "nothing injected" true (fs.Refresh.fs_injected = 0);
  checkb "not degraded" true (not fs.Refresh.fs_degraded);
  checkb "WAL records were written" true (fs.Refresh.fs_wal_records > 0);
  (* The protected run costs extra I/O only for the log itself. *)
  let base = Refresh.total_io r1 and prot = Refresh.total_io r2 in
  checkb
    (Printf.sprintf "WAL overhead <= 10%% (unprotected %d, protected %d)" base
       prot)
    true
    (float_of_int prot <= 1.10 *. float_of_int base);
  match Warehouse.integrity_check w2 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Rollback and retry. *)

let test_crash_retry_bit_identical () =
  let w_ref, batch_ref = world () in
  let _ = Refresh.run w_ref batch_ref in
  let reference = Warehouse.signature w_ref in
  let w, batch = world () in
  (* One-shot crash on the 25th armed write: first attempt dies mid-batch,
     recovery rolls back, the retry sails through (the fault is spent). *)
  let plan =
    Faults.make [ Faults.Fail_nth { op = Some Faults.Write; n = 25; kind = Faults.Crash } ]
  in
  let _, fs = ok_exn (Refresh.run_protected ~faults:plan w batch) in
  checki "two attempts" 2 fs.Refresh.fs_attempts;
  checki "one rollback" 1 fs.Refresh.fs_rollbacks;
  checkb "records were undone" true (fs.Refresh.fs_undone > 0);
  checkb "not degraded" true (not fs.Refresh.fs_degraded);
  checks "recovered state bit-identical to fault-free refresh" reference
    (Warehouse.signature w)

let test_rollback_restores_prebatch () =
  let w, batch = world () in
  let pre = Warehouse.signature w in
  (* Every write fails permanently: the normal path dies, degradation dies
     too, and the warehouse must come back exactly as it started. *)
  let plan =
    Faults.make
      [ Faults.Fail_prob { op = Some Faults.Write; p = 1.0; kind = Faults.Permanent } ]
  in
  (match Refresh.run_protected ~faults:plan ~max_attempts:2 w batch with
  | Ok _ -> Alcotest.fail "expected the batch to fail"
  | Error e ->
      checkb "fault reported as permanent" true
        (e.Refresh.err_fault.Faults.f_kind = Faults.Permanent);
      checkb "rolled back every attempt" true (e.Refresh.err_stats.Refresh.fs_rollbacks >= 2));
  checks "pre-batch state restored bit-for-bit" pre (Warehouse.signature w);
  match Warehouse.integrity_check w with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_transient_retries_in_place () =
  let w_ref, batch_ref = world () in
  let _ = Refresh.run w_ref batch_ref in
  let reference = Warehouse.signature w_ref in
  let w, batch = world () in
  let plan =
    Faults.make
      [ Faults.Fail_nth { op = Some Faults.Write; n = 10; kind = Faults.Transient } ]
  in
  let _, fs = ok_exn (Refresh.run_protected ~faults:plan w batch) in
  checki "transient never aborts the batch" 1 fs.Refresh.fs_attempts;
  checkb "the page operation retried" true (fs.Refresh.fs_retries >= 1);
  checkb "backoff time charged" true (fs.Refresh.fs_backoff_ms > 0.0);
  checki "nothing surfaced" 0 fs.Refresh.fs_injected;
  checks "state bit-identical to fault-free refresh" reference
    (Warehouse.signature w)

(* ------------------------------------------------------------------ *)
(* Graceful degradation. *)

let test_degradation_recomputes_views () =
  let w_ref, batch_ref = world () in
  let _ = Refresh.run w_ref batch_ref in
  let logical_ref = Warehouse.logical_signature w_ref in
  let w, batch = world () in
  (* A permanent mid-batch fault: the normal path cannot complete, so the
     refresh falls back to bases-only application plus view recomputation.
     (Fail_nth is consumed by op count, so the degraded pass — whose
     armed-op counter has moved past n — completes.) *)
  let plan =
    Faults.make [ Faults.Fail_nth { op = None; n = 120; kind = Faults.Permanent } ]
  in
  let _, fs = ok_exn (Refresh.run_protected ~faults:plan w batch) in
  checkb "degraded" true fs.Refresh.fs_degraded;
  checkb "views were recomputed" true (fs.Refresh.fs_recomputed_rows > 0);
  checks "logically identical to the fault-free refresh" logical_ref
    (Warehouse.logical_signature w);
  (match Warehouse.integrity_check w with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* Physically the recomputed views differ — that is the point. *)
  checkb "physically a different layout" true
    (Warehouse.signature w <> Warehouse.signature w_ref)

(* ------------------------------------------------------------------ *)
(* Group commit. *)

(* Split one generated batch into [k] conflict-free sub-batches by dealing
   each per-relation delta list round-robin: inserted keys are
   predetermined, deleted and updated keys are distinct within the batch,
   so any partition applies cleanly in stream order. *)
let split_batch k (b : Datagen.batch) =
  let deal j l = List.filteri (fun i _ -> i mod k = j) l in
  List.init k (fun j ->
      {
        Datagen.b_ins = Array.map (deal j) b.Datagen.b_ins;
        b_del = Array.map (deal j) b.Datagen.b_del;
        b_upd = Array.map (deal j) b.Datagen.b_upd;
      })

let ok3_exn = function
  | Ok v -> v
  | Error (e : Refresh.error) ->
      Alcotest.failf "group refresh failed: %a" Faults.pp_fault
        e.Refresh.err_fault

(* Grouping four deferred commits under one sync quarters the durability
   barriers and leaves the stored state bit-identical to per-batch forcing;
   the price is commit latency, which the stats must surface. *)
let test_group_commit_fewer_syncs () =
  let w1, b1 = world () in
  let w2, b2 = world () in
  let batches1 = split_batch 8 b1 and batches2 = split_batch 8 b2 in
  let per_batch = { Refresh.gp_max_group = 1; gp_window_ms = 1e9 } in
  let grouped = { Refresh.gp_max_group = 4; gp_window_ms = 1e9 } in
  let r1, _, g1 = ok3_exn (Refresh.run_protected_many ~policy:per_batch w1 batches1) in
  let r2, _, g2 = ok3_exn (Refresh.run_protected_many ~policy:grouped w2 batches2) in
  checki "per-batch forcing: one sync per batch" 8 r1.Refresh.rp_wal_syncs;
  checki "group commit: one sync per group" 2 r2.Refresh.rp_wal_syncs;
  checki "group syncs counted" 2 g2.Refresh.gr_group_syncs;
  checki "largest group is the cap" 4 g2.Refresh.gr_max_group;
  checki "degenerate groups are singletons" 1 g1.Refresh.gr_max_group;
  checki "no replays without faults" 0 g2.Refresh.gr_replayed;
  checks "bit-identical stored state" (Warehouse.signature w1)
    (Warehouse.signature w2);
  (* Deferred commits wait for their group's sync: total latency must be
     strictly positive, while per-batch forcing commits at arrival. *)
  checkb "grouping trades latency for syncs" true
    (g2.Refresh.gr_latency_ms_total > g1.Refresh.gr_latency_ms_total);
  checkb "clock advanced one slot per batch" true
    (g2.Refresh.gr_clock_ms = 80.);
  match Warehouse.integrity_check w2 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* The window bound fires a sync when the oldest pending commit has waited
   long enough, even with the size cap far away: arrivals every 10ms and a
   25ms window close groups of three. *)
let test_group_window_forces_sync () =
  let w, batch = world () in
  let batches = split_batch 8 batch in
  let policy = { Refresh.gp_max_group = 100; gp_window_ms = 25. } in
  let _, _, g = ok3_exn (Refresh.run_protected_many ~policy w batches) in
  checki "window closes groups of three (plus stream tail)" 3
    g.Refresh.gr_group_syncs;
  checki "window-bounded group size" 3 g.Refresh.gr_max_group

(* A crash while a group is open rolls back every non-durable batch and
   replays them individually; the end state is bit-identical to a
   fault-free run of the same stream. *)
let test_group_crash_replays_bit_identical () =
  let w_ref, batch_ref = world () in
  let batches_ref = split_batch 8 batch_ref in
  let _ = ok3_exn (Refresh.run_protected_many w_ref batches_ref) in
  let reference = Warehouse.signature w_ref in
  let w, batch = world () in
  let batches = split_batch 8 batch in
  let plan =
    Faults.make
      [ Faults.Fail_nth { op = Some Faults.Write; n = 25; kind = Faults.Crash } ]
  in
  let _, fs, g = ok3_exn (Refresh.run_protected_many ~faults:plan w batches) in
  checkb "the crash surfaced once" true (fs.Refresh.fs_injected = 1);
  checkb "cross-batch rollback ran" true (fs.Refresh.fs_rollbacks >= 1);
  checkb "rolled-back batches replayed individually" true
    (g.Refresh.gr_replayed >= 1);
  checks "recovered state bit-identical to the fault-free stream" reference
    (Warehouse.signature w);
  match Warehouse.integrity_check w with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* The group scheduler runs on a simulated clock, so a seeded fault plan
   replays the whole stream bit-identically. *)
let test_group_commit_deterministic () =
  let outcome () =
    let w, batch = world () in
    let batches = split_batch 6 batch in
    let rng = Random.State.make [| 42; 7 |] in
    let plan = Faults.random ~rng () in
    match Refresh.run_protected_many ~faults:plan w batches with
    | Ok (r, fs, g) ->
        ( "ok",
          Warehouse.signature w,
          r.Refresh.rp_wal_syncs,
          fs.Refresh.fs_attempts,
          g.Refresh.gr_replayed )
    | Error e ->
        ( Format.asprintf "%a" Faults.pp_fault e.Refresh.err_fault,
          Warehouse.signature w,
          0,
          e.Refresh.err_stats.Refresh.fs_attempts,
          0 )
  in
  checkb "same plan, same stream, same outcome" true (outcome () = outcome ())

(* ------------------------------------------------------------------ *)
(* Determinism. *)

let test_fault_plans_deterministic () =
  let outcome () =
    let w, batch = world () in
    let rng = Random.State.make [| 42; 7 |] in
    let plan = Faults.random ~rng () in
    match Refresh.run_protected ~faults:plan w batch with
    | Ok (_, fs) ->
        ( "ok",
          Warehouse.signature w,
          fs.Refresh.fs_attempts,
          fs.Refresh.fs_injected,
          fs.Refresh.fs_retries )
    | Error e ->
        ( Format.asprintf "%a" Faults.pp_fault e.Refresh.err_fault,
          Warehouse.signature w,
          e.Refresh.err_stats.Refresh.fs_attempts,
          e.Refresh.err_stats.Refresh.fs_injected,
          e.Refresh.err_stats.Refresh.fs_retries )
  in
  let a = outcome () and b = outcome () in
  checkb "same plan, same outcome, same state" true (a = b)

let () =
  Alcotest.run "vis_recovery"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "page spill" `Quick test_wal_page_spill;
        ] );
      ( "protected refresh",
        [
          Alcotest.test_case "fault-free bit-identity + overhead" `Quick
            test_protected_matches_unprotected;
          Alcotest.test_case "crash retry" `Quick test_crash_retry_bit_identical;
          Alcotest.test_case "permanent failure rolls back" `Quick
            test_rollback_restores_prebatch;
          Alcotest.test_case "transient retries in place" `Quick
            test_transient_retries_in_place;
          Alcotest.test_case "degradation recomputes views" `Quick
            test_degradation_recomputes_views;
          Alcotest.test_case "deterministic plans" `Quick
            test_fault_plans_deterministic;
        ] );
      ( "group commit",
        [
          Alcotest.test_case "fewer syncs, same state" `Quick
            test_group_commit_fewer_syncs;
          Alcotest.test_case "window forces sync" `Quick
            test_group_window_forces_sync;
          Alcotest.test_case "crash replays bit-identical" `Quick
            test_group_crash_replays_bit_identical;
          Alcotest.test_case "deterministic stream" `Quick
            test_group_commit_deterministic;
        ] );
    ]
