(* Tests for the fuzzing library itself: the generator only produces
   valid (and, for the executable flavor, engine-compatible) schemas, the
   repro JSON round-trips exactly, the oracle registry resolves names, a
   short deterministic run of the full loop is failure-free and
   reproducible, and the shrinker minimizes a schema against a synthetic
   oracle. *)

module Schema = Vis_catalog.Schema
module Json = Vis_util.Json
module Datagen = Vis_workload.Datagen
module Gen = Vis_fuzz.Gen
module Oracles = Vis_fuzz.Oracles
module Repro = Vis_fuzz.Repro
module Runner = Vis_fuzz.Runner
module Shrink = Vis_fuzz.Shrink

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Generator. *)

let test_executable_schemas_valid () =
  for seed = 0 to 49 do
    let rng = Random.State.make [| 11; seed |] in
    let s = Gen.executable ~rng () in
    checkb "connected" true (Schema.connected s (Schema.all_relations s));
    checkb "foreign-key-consistent" true (Gen.fk_consistent s);
    (* The whole point of the executable flavor: the storage engine can
       realize its statistics. *)
    let data = Datagen.generate ~rng:(Random.State.make [| 12; seed |]) s in
    ignore (Datagen.deltas ~rng:(Random.State.make [| 13; seed |]) s data);
    Array.iteri
      (fun i (r : Schema.relation) ->
        checki
          (Printf.sprintf "tuple width matches the engine for %s"
             r.Schema.rel_name)
          (List.length r.Schema.attrs * Vis_maintenance.Warehouse.attr_bytes)
          r.Schema.tuple_bytes;
        ignore i)
      s.Schema.relations
  done

let test_schema_mixes_flavors () =
  (* Over many seeds the mixed generator must produce both the executable
     flavor (FK-consistent) and the abstract one (usually not). *)
  let consistent = ref 0 and total = 100 in
  for seed = 0 to total - 1 do
    let rng = Random.State.make [| 17; seed |] in
    let s = Gen.schema ~rng () in
    if Gen.fk_consistent s then incr consistent
  done;
  checkb "mostly executable schemas" true (!consistent > total / 2);
  checkb "some abstract schemas too" true (!consistent < total)

(* ------------------------------------------------------------------ *)
(* Repro JSON. *)

let test_schema_roundtrip () =
  for seed = 0 to 19 do
    let rng = Random.State.make [| 23; seed |] in
    let s = Gen.schema ~rng () in
    let back = Repro.schema_of_json (Repro.schema_to_json s) in
    checkb "schema survives the JSON round trip exactly" true (s = back)
  done

let test_repro_roundtrip_and_file () =
  let rng = Random.State.make [| 29; 0 |] in
  let schema = Gen.executable ~rng () in
  let original = Gen.executable ~rng () in
  let r =
    {
      Repro.r_seed = 42;
      r_trial = 17;
      r_oracle = "astar-optimal";
      r_failure = "A* cost 1.5 differs from exhaustive optimum 1.0";
      r_schema = schema;
      r_original = Some original;
    }
  in
  checkb "repro survives the JSON round trip" true
    (Repro.of_json (Repro.to_json r) = r);
  let path = Filename.temp_file "visfuzz-test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Repro.save path r;
      checkb "repro survives the file round trip" true (Repro.load path = r));
  (* Without the original schema the field is simply absent. *)
  let r' = { r with Repro.r_original = None } in
  checkb "repro without an original round-trips too" true
    (Repro.of_json (Repro.to_json r') = r')

let test_malformed_repro_rejected () =
  let raises f =
    match f () with
    | _ -> false
    | exception Repro.Malformed _ -> true
  in
  checkb "an empty document is malformed" true
    (raises (fun () -> Repro.of_json (Json.Obj [])));
  checkb "a wrongly-typed field is malformed" true
    (raises (fun () ->
         Repro.of_json
           (Json.Obj [ ("seed", Json.String "not a number") ])))

(* ------------------------------------------------------------------ *)
(* Oracle registry. *)

let test_registry () =
  checkb "the registry is not empty" true (Oracles.all <> []);
  List.iter
    (fun (o : Oracles.t) ->
      match Oracles.find o.Oracles.o_name with
      | Some found ->
          Alcotest.(check string) "find returns the named oracle"
            o.Oracles.o_name found.Oracles.o_name
      | None -> Alcotest.failf "oracle %s not found" o.Oracles.o_name)
    Oracles.all;
  (match Oracles.select [ "yao-bounds"; "astar-optimal" ] with
  | Ok selected ->
      Alcotest.(check (list string))
        "select preserves registry order"
        [ "astar-optimal"; "yao-bounds" ]
        (List.map (fun (o : Oracles.t) -> o.Oracles.o_name) selected)
  | Error msg -> Alcotest.fail msg);
  match Oracles.select [ "no-such-oracle" ] with
  | Ok _ -> Alcotest.fail "select accepted an unknown oracle"
  | Error msg -> checkb "the error names the oracle" true (msg <> "")

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_resolve_diagnostics () =
  (* [resolve] backs both [--oracles] and the repro-JSON replay path: an
     unknown name must produce one message that names the typo and lists
     every known oracle, so a stale saved repro is self-diagnosing. *)
  (match Oracles.resolve "service-replay" with
  | Ok o ->
      Alcotest.(check string)
        "the daemon oracle is registered" "service-replay" o.Oracles.o_name
  | Error msg -> Alcotest.fail msg);
  (match Oracles.resolve "mined-candidates" with
  | Ok o ->
      Alcotest.(check string)
        "the mining oracle is registered" "mined-candidates" o.Oracles.o_name
  | Error msg -> Alcotest.fail msg);
  (match Oracles.resolve "mined-candidate" with
  | Ok _ -> Alcotest.fail "resolve accepted a misspelled mining oracle"
  | Error msg ->
      checkb "the error quotes the unknown mining name" true
        (contains ~needle:"mined-candidate" msg));
  match Oracles.resolve "service-reply" with
  | Ok _ -> Alcotest.fail "resolve accepted a misspelled oracle"
  | Error msg ->
      checkb "the error quotes the unknown name" true
        (contains ~needle:"service-reply" msg);
      List.iter
        (fun (o : Oracles.t) ->
          checkb
            (Printf.sprintf "the error lists known oracle %s" o.Oracles.o_name)
            true
            (contains ~needle:o.Oracles.o_name msg))
        Oracles.all

(* ------------------------------------------------------------------ *)
(* Runner. *)

let smoke_config () =
  { (Runner.default_config ()) with Runner.cf_seed = 5; cf_trials = 4 }

let smoke = lazy (Runner.run (smoke_config ()))

let test_runner_smoke () =
  let report = Lazy.force smoke in
  checki "all trials ran" 4 report.Runner.rp_trials_run;
  checki "no failures on main" 0 (List.length report.Runner.rp_failures);
  List.iter
    (fun (s : Runner.oracle_stats) ->
      checki
        (Printf.sprintf "%s accounted for every trial" s.Runner.os_name)
        4
        (s.Runner.os_pass + s.Runner.os_skip + s.Runner.os_fail))
    report.Runner.rp_oracles;
  (* Something must actually run: not everything skipped. *)
  checkb "some oracle passed on some trial" true
    (List.exists (fun (s : Runner.oracle_stats) -> s.Runner.os_pass > 0)
       report.Runner.rp_oracles)

let test_runner_deterministic () =
  let strip (report : Runner.report) =
    List.map
      (fun (s : Runner.oracle_stats) ->
        (s.Runner.os_name, s.Runner.os_pass, s.Runner.os_skip, s.Runner.os_fail))
      report.Runner.rp_oracles
  in
  let a = Lazy.force smoke in
  let b = Runner.run (smoke_config ()) in
  checkb "two identical runs agree outcome for outcome" true
    (strip a = strip b)

let test_check_schema_replays () =
  (* check_schema with the recorded (seed, trial) is the replay path: it
     must agree with what the loop observed. *)
  let config = smoke_config () in
  let rng = Random.State.make [| config.Runner.cf_seed; 2 |] in
  let schema = Gen.schema ~rng () in
  let once = Runner.check_schema config ~trial:2 schema in
  let again = Runner.check_schema config ~trial:2 schema in
  checkb "replay is deterministic" true (once = again);
  checki "one outcome per configured oracle"
    (List.length config.Runner.cf_oracles)
    (List.length once)

(* ------------------------------------------------------------------ *)
(* Shrinker. *)

let test_candidates_are_simpler () =
  let rng = Random.State.make [| 31; 3 |] in
  let s = Gen.executable ~rng () in
  let cands = Shrink.candidates s in
  checkb "a generated schema has shrink candidates" true (cands <> []);
  List.iter
    (fun (c : Schema.t) ->
      checkb "candidates stay connected" true
        (Schema.connected c (Schema.all_relations c));
      checkb "candidates never grow" true
        (Schema.n_relations c <= Schema.n_relations s
        && List.length c.Schema.selections <= List.length s.Schema.selections))
    cands

let test_shrink_minimizes () =
  (* A synthetic oracle that fails on any schema with a selection: the
     shrinker must walk down to a minimal instance that still has one. *)
  let fake =
    {
      Oracles.o_name = "has-selection";
      o_doc = "synthetic";
      o_check =
        (fun _ s ->
          if s.Schema.selections <> [] then Oracles.Fail "has a selection"
          else Oracles.Pass);
    }
  in
  let ctx () = Oracles.make_ctx ~rng:(Random.State.make [| 1 |]) () in
  (* Find a fat failing instance: several relations and a selection. *)
  let rec fat seed =
    let rng = Random.State.make [| 37; seed |] in
    let s = Gen.executable ~rng () in
    if Schema.n_relations s >= 3 && s.Schema.selections <> [] then s
    else fat (seed + 1)
  in
  let s = fat 0 in
  let small = Shrink.shrink ~oracle:fake ~ctx s in
  checkb "the shrunk schema still fails" true
    (fake.Oracles.o_check (ctx ()) small = Oracles.Fail "has a selection");
  checki "shrunk to a single relation" 1 (Schema.n_relations small);
  checki "exactly one selection survives" 1
    (List.length small.Schema.selections);
  Array.iter
    (fun (r : Schema.relation) ->
      checkb "cardinalities rounded down" true (r.Schema.card <= 100.))
    small.Schema.relations;
  Array.iter
    (fun (d : Schema.delta) ->
      checkb "deltas zeroed" true
        (d.Schema.n_ins = 0. && d.Schema.n_del = 0. && d.Schema.n_upd = 0.))
    small.Schema.deltas

let () =
  Alcotest.run "fuzz"
    [
      ( "gen",
        [
          Alcotest.test_case "executable schemas" `Quick
            test_executable_schemas_valid;
          Alcotest.test_case "flavor mix" `Quick test_schema_mixes_flavors;
        ] );
      ( "repro",
        [
          Alcotest.test_case "schema round trip" `Quick test_schema_roundtrip;
          Alcotest.test_case "repro round trip + file" `Quick
            test_repro_roundtrip_and_file;
          Alcotest.test_case "malformed rejected" `Quick
            test_malformed_repro_rejected;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "resolve diagnostics" `Quick
            test_resolve_diagnostics;
        ] );
      ( "runner",
        [
          Alcotest.test_case "smoke" `Quick test_runner_smoke;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "replay path" `Quick test_check_schema_replays;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "candidates" `Quick test_candidates_are_simpler;
          Alcotest.test_case "minimizes" `Quick test_shrink_minimizes;
        ] );
    ]
