(* Tests for vis_maintenance and the data generator: the executable
   warehouse, correctness of executed refresh cycles under many physical
   designs and seeds, and the cost model's predictions versus measured
   I/O. *)

module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Element = Vis_costmodel.Element
module Datagen = Vis_workload.Datagen
module Warehouse = Vis_maintenance.Warehouse
module Refresh = Vis_maintenance.Refresh
module Validate = Vis_maintenance.Validate

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let schema = Vis_workload.Schemas.validation ()

(* ------------------------------------------------------------------ *)
(* Data generation. *)

let test_datagen_shapes () =
  let rng = Random.State.make [| 1 |] in
  let ds = Datagen.generate ~rng schema in
  checki "three relations" 3 (Array.length ds.Datagen.ds_tuples);
  Array.iteri
    (fun i tuples ->
      checki "cardinality realized"
        (int_of_float (Schema.relation schema i).Schema.card)
        (List.length tuples))
    ds.Datagen.ds_tuples;
  (* Keys are distinct and consecutive. *)
  let keys =
    List.map (fun t -> t.(0)) ds.Datagen.ds_tuples.(2) |> List.sort compare
  in
  Alcotest.(check (list int)) "keys 0..n-1"
    (List.init (List.length keys) Fun.id)
    keys

let test_datagen_selectivity () =
  let rng = Random.State.make [| 2 |] in
  let ds = Datagen.generate ~rng schema in
  let passing =
    List.length
      (List.filter (Datagen.passes_selections schema ~rel:2) ds.Datagen.ds_tuples.(2))
  in
  let total = List.length ds.Datagen.ds_tuples.(2) in
  let frac = float_of_int passing /. float_of_int total in
  checkb "about 10% pass" true (frac > 0.05 && frac < 0.2)

let test_datagen_fk_realized () =
  let rng = Random.State.make [| 3 |] in
  let ds = Datagen.generate ~rng schema in
  (* |R ⋈ S| should be exactly T(R): every R.R1 hits one S key. *)
  let s_keys = Hashtbl.create 64 in
  List.iter (fun t -> Hashtbl.replace s_keys t.(0) ()) ds.Datagen.ds_tuples.(1);
  checkb "every FK resolves" true
    (List.for_all (fun t -> Hashtbl.mem s_keys t.(1)) ds.Datagen.ds_tuples.(0))

let test_datagen_batch () =
  let rng = Random.State.make [| 4 |] in
  let ds = Datagen.generate ~rng schema in
  let b = Datagen.deltas ~rng schema ds in
  Array.iteri
    (fun i ins ->
      checki "insert count"
        (int_of_float (Float.round (Schema.delta schema i).Schema.n_ins))
        (List.length ins))
    b.Datagen.b_ins;
  (* Deleted and updated keys are distinct existing keys. *)
  Array.iteri
    (fun i dels ->
      let dels_sorted = List.sort_uniq compare dels in
      checki "deletes distinct" (List.length dels) (List.length dels_sorted);
      List.iter
        (fun k -> checkb "delete exists" true (k < ds.Datagen.ds_next_key.(i)))
        dels;
      List.iter
        (fun (k, _) -> checkb "upd not deleted" true (not (List.mem k dels)))
        b.Datagen.b_upd.(i))
    b.Datagen.b_del;
  (* Updates only change protected attributes. *)
  let originals = Array.of_list ds.Datagen.ds_tuples.(0) in
  List.iter
    (fun (k, fresh) ->
      let old = originals.(k) in
      checki "key kept" old.(0) fresh.(0);
      checki "fk kept" old.(1) fresh.(1))
    b.Datagen.b_upd.(0)

let test_datagen_unsupported () =
  (* The literal Figure 5 schema equates two keys: not generatable. *)
  match
    Datagen.generate ~rng:(Random.State.make [| 5 |]) (Vis_workload.Schemas.schema1 ())
  with
  | exception Datagen.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_protected_attrs () =
  Alcotest.(check (list string)) "R payload" [ "R2" ] (Datagen.protected_attrs schema 0);
  Alcotest.(check (list string)) "T payload" [ "T2" ] (Datagen.protected_attrs schema 2)

(* ------------------------------------------------------------------ *)
(* Warehouse construction. *)

let build_warehouse ?(config = Config.empty) ?(seed = 11) () =
  let rng = Random.State.make [| seed |] in
  let ds = Datagen.generate ~rng schema in
  (Warehouse.build schema config ds, ds, rng)

let test_build_counts () =
  let w, ds, _ = build_warehouse () in
  Array.iteri
    (fun i table ->
      checki "base loaded"
        (List.length ds.Datagen.ds_tuples.(i))
        (Vis_relalg.Table.n_tuples table))
    w.Warehouse.w_bases;
  (* Primary view matches the in-memory recomputation. *)
  let v =
    Option.get
      (Warehouse.element_table w (Element.View (Schema.all_relations schema)))
  in
  let expected =
    Warehouse.compute_view_in_memory schema ~tuples:ds.Datagen.ds_tuples
      (Schema.all_relations schema)
  in
  checki "view size" (List.length expected) (Vis_relalg.Table.n_tuples v);
  (* Counters were reset after the build. *)
  checki "stats reset" 0 (Vis_storage.Iostats.reads w.Warehouse.w_stats)

let test_build_with_views_and_indexes () =
  let st = Bitset.of_list [ 1; 2 ] in
  let ix =
    {
      Element.ix_elem = Element.View (Schema.all_relations schema);
      ix_attr = { Element.a_rel = 0; a_name = "R0" };
    }
  in
  let config = Config.make ~views:[ st ] ~indexes:[ ix ] in
  let w, _, _ = build_warehouse ~config () in
  let stt = Option.get (Warehouse.element_table w (Element.View st)) in
  checkb "supporting view populated" true (Vis_relalg.Table.n_tuples stt > 0);
  let v =
    Option.get
      (Warehouse.element_table w (Element.View (Schema.all_relations schema)))
  in
  checkb "index attached" true
    (Vis_relalg.Table.index_on v
       ~offset:(Vis_relalg.Reldesc.offset (Vis_relalg.Table.desc v) ~rel:0 ~attr:"R0")
    <> None);
  match Warehouse.element_table w (Element.View (Bitset.of_list [ 0; 1 ])) with
  | None -> ()
  | Some _ -> Alcotest.fail "unmaterialized view should be absent"

(* Compression on the storage side: compressed tables pack twice the tuples
   per page, so the durable footprint roughly halves, and refresh stays
   exact on a compressed design. *)
let compressed_config () =
  let elems =
    Element.Base 0 :: Element.Base 1 :: Element.Base 2
    :: [ Element.View (Schema.all_relations schema) ]
  in
  List.fold_left Config.add_compress Config.empty elems

let test_build_compressed_footprint () =
  let w_plain, _, _ = build_warehouse () in
  let w_comp, ds, _ = build_warehouse ~config:(compressed_config ()) () in
  (* Same logical contents... *)
  Array.iteri
    (fun i table ->
      checki "base loaded"
        (List.length ds.Datagen.ds_tuples.(i))
        (Vis_relalg.Table.n_tuples table))
    w_comp.Warehouse.w_bases;
  checkb "tables marked compressed" true
    (Array.for_all Vis_relalg.Table.compressed w_comp.Warehouse.w_bases);
  checkb "plain tables are not" true
    (not (Array.exists Vis_relalg.Table.compressed w_plain.Warehouse.w_bases));
  (* ...in about half the pages (ceilings keep it from exactly 0.5). *)
  let plain = Warehouse.total_data_pages w_plain
  and comp = Warehouse.total_data_pages w_comp in
  let ratio = float_of_int comp /. float_of_int plain in
  checkb
    (Printf.sprintf "compressed footprint ~ half (%d/%d = %.2f)" comp plain
       ratio)
    true
    (ratio >= 0.4 && ratio <= 0.6)

let test_refresh_exact_on_compressed_design () =
  let report, checks = Validate.run_cycle ~seed:7 schema (compressed_config ()) in
  checkb "views stay exact under compression" true (Validate.all_ok checks);
  checkb "did I/O" true (Refresh.total_io report > 0)

(* ------------------------------------------------------------------ *)
(* Refresh correctness across designs and seeds. *)

let designs p =
  let optimal = (Vis_core.Astar.search p).Vis_core.Astar.best in
  let everything =
    Config.make ~views:p.Vis_core.Problem.candidate_views
      ~indexes:
        (Vis_core.Problem.indexes_for_views p p.Vis_core.Problem.candidate_views)
  in
  let st_only =
    Config.make ~views:[ Bitset.of_list [ 1; 2 ] ] ~indexes:[]
  in
  [ ("empty", Config.empty); ("st", st_only); ("optimal", optimal);
    ("everything", everything) ]

let test_refresh_correct_all_designs () =
  let p = Vis_core.Problem.make schema in
  List.iter
    (fun (name, config) ->
      let report, checks = Validate.run_cycle ~seed:7 schema config in
      checkb (name ^ " views stay exact") true (Validate.all_ok checks);
      checkb (name ^ " did I/O") true (Refresh.total_io report > 0))
    (designs p)

let test_refresh_correct_many_seeds () =
  let p = Vis_core.Problem.make schema in
  let optimal = (Vis_core.Astar.search p).Vis_core.Astar.best in
  List.iter
    (fun seed ->
      let _, checks = Validate.run_cycle ~seed schema optimal in
      checkb (Printf.sprintf "seed %d" seed) true (Validate.all_ok checks))
    [ 1; 2; 3; 4; 5 ]

let test_refresh_small_instance () =
  (* A tiny instance exercising page boundaries. *)
  let small = Vis_workload.Schemas.validation ~base_card:40. ~mem_pages:4 () in
  let p = Vis_core.Problem.make small in
  List.iter
    (fun (name, config) ->
      let _, checks = Validate.run_cycle ~seed:3 small config in
      checkb (name ^ " small ok") true (Validate.all_ok checks))
    (designs p)

let test_refresh_insert_only () =
  let s =
    Vis_workload.Schemas.validation ~ins_frac:0.05 ~del_frac:0. ~upd_frac:0. ()
  in
  let report, checks = Validate.run_cycle ~seed:9 s Config.empty in
  checkb "insert-only exact" true (Validate.all_ok checks);
  checkb "writes happened" true (report.Refresh.rp_writes > 0)

let test_refresh_delete_only () =
  let s =
    Vis_workload.Schemas.validation ~ins_frac:0. ~del_frac:0.02 ~upd_frac:0. ()
  in
  let _, checks = Validate.run_cycle ~seed:9 s Config.empty in
  checkb "delete-only exact" true (Validate.all_ok checks)

let test_refresh_empty_batch () =
  (* A batch with no changes must leave the warehouse untouched and cost
     almost nothing (the executor still opens the staged delta tables). *)
  let s =
    Vis_workload.Schemas.validation ~ins_frac:0. ~del_frac:0. ~upd_frac:0. ()
  in
  let report, checks = Validate.run_cycle ~seed:4 s Config.empty in
  checkb "still exact" true (Validate.all_ok checks);
  checkb "negligible I/O" true (Refresh.total_io report < 10)

let test_refresh_update_only () =
  let s =
    Vis_workload.Schemas.validation ~ins_frac:0. ~del_frac:0. ~upd_frac:0.02 ()
  in
  let _, checks = Validate.run_cycle ~seed:9 s Config.empty in
  checkb "update-only exact" true (Validate.all_ok checks)

(* A Schema-2-shaped executable instance: the selection sits on the middle
   relation, exercising different pushed-down filter paths. *)
let middle_selection_schema =
  let rel3 name card =
    {
      Schema.rel_name = name;
      card;
      tuple_bytes = 24;
      key_attr = name ^ "0";
      attrs = [ name ^ "0"; name ^ "1"; name ^ "2" ];
    }
  in
  let d card = { Schema.n_ins = 0.02 *. card; n_del = 0.005 *. card; n_upd = 0.005 *. card } in
  Schema.make ~page_bytes:512 ~mem_pages:40
    ~relations:[ rel3 "A" 1200.; rel3 "B" 1200.; rel3 "C" 400. ]
    ~selections:[ { Schema.sel_rel = 1; sel_attr = "B2"; selectivity = 0.25 } ]
    ~joins:
      [
        {
          Schema.left_rel = 0;
          left_attr = "A1";
          right_rel = 1;
          right_attr = "B0";
          join_sel = 1. /. 1200.;
        };
        {
          Schema.left_rel = 1;
          left_attr = "B1";
          right_rel = 2;
          right_attr = "C0";
          join_sel = 1. /. 400.;
        };
      ]
    ~deltas:[ d 1200.; d 1200.; d 400. ]
    ()

let test_refresh_middle_selection () =
  let p = Vis_core.Problem.make middle_selection_schema in
  let optimal = (Vis_core.Astar.search p).Vis_core.Astar.best in
  List.iter
    (fun (name, config) ->
      let _, checks = Validate.run_cycle ~seed:13 middle_selection_schema config in
      checkb (name ^ " exact with middle selection") true (Validate.all_ok checks))
    [ ("empty", Config.empty); ("optimal", optimal) ]

(* ------------------------------------------------------------------ *)
(* Cost model accuracy: the prediction should be within a small constant
   factor of the measurement, and should order the designs consistently. *)

let test_prediction_tracks_measurement () =
  let p = Vis_core.Problem.make schema in
  let results =
    List.map
      (fun (name, config) ->
        let report, _ = Validate.run_cycle ~seed:5 schema config in
        (name, report.Refresh.rp_predicted, float_of_int (Refresh.total_io report)))
      (designs p)
  in
  List.iter
    (fun (name, predicted, measured) ->
      let ratio = predicted /. Float.max 1. measured in
      checkb
        (Printf.sprintf "%s ratio %.2f within [0.25, 8]" name ratio)
        true
        (ratio > 0.25 && ratio < 8.))
    results;
  (* The extreme designs are ordered the same way by model and metal. *)
  let find n = List.find (fun (m, _, _) -> m = n) results in
  let _, pred_empty, meas_empty = find "empty" in
  let _, pred_all, meas_all = find "everything" in
  checkb "model and measurement agree on the worst design" true
    (pred_all > pred_empty && meas_all > meas_empty)

let prop_refresh_random_seeds =
  QCheck2.Test.make ~name:"refresh: exact maintenance on random seeds" ~count:8
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let small = Vis_workload.Schemas.validation ~base_card:100. () in
      let p = Vis_core.Problem.make small in
      let config = (Vis_core.Rules.advise p).Vis_core.Rules.a_config in
      let _, checks = Validate.run_cycle ~seed small config in
      Validate.all_ok checks)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "vis_maintenance"
    [
      ( "datagen",
        [
          Alcotest.test_case "shapes" `Quick test_datagen_shapes;
          Alcotest.test_case "selectivity" `Quick test_datagen_selectivity;
          Alcotest.test_case "foreign keys" `Quick test_datagen_fk_realized;
          Alcotest.test_case "delta batches" `Quick test_datagen_batch;
          Alcotest.test_case "unsupported schemas" `Quick test_datagen_unsupported;
          Alcotest.test_case "protected attrs" `Quick test_protected_attrs;
        ] );
      ( "warehouse",
        [
          Alcotest.test_case "build counts" `Quick test_build_counts;
          Alcotest.test_case "views and indexes" `Quick test_build_with_views_and_indexes;
          Alcotest.test_case "compressed footprint" `Quick
            test_build_compressed_footprint;
          Alcotest.test_case "refresh exact on compressed design" `Quick
            test_refresh_exact_on_compressed_design;
        ] );
      ( "refresh",
        [
          Alcotest.test_case "all designs exact" `Slow test_refresh_correct_all_designs;
          Alcotest.test_case "many seeds" `Slow test_refresh_correct_many_seeds;
          Alcotest.test_case "small instance" `Quick test_refresh_small_instance;
          Alcotest.test_case "empty batch" `Quick test_refresh_empty_batch;
          Alcotest.test_case "insert only" `Quick test_refresh_insert_only;
          Alcotest.test_case "delete only" `Quick test_refresh_delete_only;
          Alcotest.test_case "update only" `Quick test_refresh_update_only;
          Alcotest.test_case "middle selection" `Quick test_refresh_middle_selection;
        ]
        @ qt [ prop_refresh_random_seeds ] );
      ( "cost model accuracy",
        [
          Alcotest.test_case "prediction tracks measurement" `Slow
            test_prediction_tracks_measurement;
        ] );
    ]
