(* Tests for the workload-driven candidate pipeline: the seeded query-log
   generator, the frequent-pattern miner, and [Problem.make ?candidates]
   running the searches on the mined subset. *)

module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Problem = Vis_core.Problem
module Astar = Vis_core.Astar
module Schemas = Vis_workload.Schemas
module Querygen = Vis_workload.Querygen
module Miner = Vis_workload.Miner
module Stream = Vis_workload.Stream

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let schema1 () = Schemas.schema1 ()
let star8 () = Schemas.star ~n_dims:7 ()

let mem_attr universe a = Array.exists (fun b -> b = a) universe

(* ------------------------------------------------------------------ *)
(* Query-log generation. *)

let test_querygen_deterministic () =
  let s = star8 () in
  let l1 = Querygen.generate ~seed:42 ~n:200 s in
  let l2 = Querygen.generate ~seed:42 ~n:200 s in
  checkb "same seed, same log" true (l1 = l2);
  let l3 = Querygen.generate ~seed:43 ~n:200 s in
  checkb "different seed, different log" true (l1 <> l3)

let test_querygen_well_formed () =
  let s = star8 () in
  let universe = Querygen.attr_universe s in
  let log = Querygen.generate ~seed:7 ~n:300 s in
  checki "n queries" 300 (List.length log);
  List.iter
    (fun (q : Querygen.query) ->
      checkb "tick in range" true (q.Querygen.q_tick >= 0 && q.Querygen.q_tick < 64);
      checkb "some relation" true (not (Bitset.is_empty q.Querygen.q_rels));
      checkb "some attribute" true (q.Querygen.q_attrs <> []);
      List.iter
        (fun ((rel, _) as a) ->
          checkb "attr in universe" true (mem_attr universe a);
          checkb "attr's relation accessed" true (Bitset.mem rel q.Querygen.q_rels))
        q.Querygen.q_attrs)
    log;
  (* All four templates appear in a joined schema's log. *)
  let has t = List.exists (fun q -> q.Querygen.q_template = t) log in
  List.iter
    (fun t -> checkb (Querygen.template_name t) true (has t))
    [ Querygen.Point; Querygen.Range; Querygen.Star_join; Querygen.Aggregate ]

let test_querygen_drift_changes_log () =
  let s = star8 () in
  let flat = Querygen.generate ~seed:5 ~n:400 s in
  let drifted =
    Querygen.generate ~seed:5 ~n:400
      ~drift:(Stream.Ramp { from_tick = 8; over = 16; factor = 6. })
      s
  in
  checkb "drift alters the draw" true (flat <> drifted);
  (* Before the ramp starts both logs are identical draws. *)
  let before l =
    List.filter (fun (q : Querygen.query) -> q.Querygen.q_tick < 8) l
  in
  checkb "identical before drift onset" true (before flat = before drifted)

(* ------------------------------------------------------------------ *)
(* Mining. *)

let test_minsup_zero_bit_identical () =
  List.iter
    (fun s ->
      let log = Querygen.generate ~seed:11 ~n:100 s in
      let m = Miner.mine ~minsup:0. s log in
      let p_full = Problem.make s in
      let p_mined = Problem.make ~candidates:m.Miner.m_candidates s in
      checki "same feature count"
        (List.length p_full.Problem.features)
        (List.length p_mined.Problem.features);
      checkb "features bit-identical" true
        (List.for_all2 Problem.equal_feature p_full.Problem.features
           p_mined.Problem.features);
      checkb "views identical" true
        (List.for_all2 Bitset.equal p_full.Problem.candidate_views
           p_mined.Problem.candidate_views))
    [ schema1 (); Schemas.chain ~n:4 (); Schemas.two_relation () ]

let test_minsup_monotone_attrs () =
  let s = star8 () in
  let log = Querygen.generate ~seed:3 ~n:500 s in
  let attrs ms =
    (Miner.mine ~minsup:ms s log).Miner.m_candidates.Problem.cand_attrs
  in
  let a01 = attrs 0.1 and a03 = attrs 0.3 in
  checkb "higher minsup keeps fewer attrs" true
    (List.length a03 <= List.length a01);
  checkb "and is a subset" true (List.for_all (fun a -> List.mem a a01) a03)

let test_mined_features_subset () =
  let s = star8 () in
  let log = Querygen.generate ~seed:42 ~n:400 s in
  let m = Miner.mine ~minsup:0.1 s log in
  let p_full = Problem.make ~connected_only:true ~max_view_rels:2 s in
  let p_mined =
    Problem.make ~connected_only:true ~max_view_rels:2
      ~candidates:m.Miner.m_candidates s
  in
  checkb "pruned strictly" true
    (List.length p_mined.Problem.features < List.length p_full.Problem.features);
  List.iter
    (fun f ->
      checkb "mined feature is structural" true
        (List.exists (Problem.equal_feature f) p_full.Problem.features))
    p_mined.Problem.features

let test_maintenance_keys_survive () =
  (* Even an empty candidate set keeps the del/upd key indexes: pruning is
     query-driven, maintenance is not negotiable. *)
  let s = schema1 () in
  let p =
    Problem.make ~candidates:{ Problem.cand_views = []; cand_attrs = [] } s
  in
  checki "no views" 0 (List.length p.Problem.candidate_views);
  let base_r =
    Problem.candidate_indexes_on p (Vis_costmodel.Element.Base 0)
  in
  Alcotest.(check (list string))
    "R keeps its key (receives deletions), loses the join attr" [ "R0" ]
    (List.map
       (fun ix -> ix.Vis_costmodel.Element.ix_attr.Vis_costmodel.Element.a_name)
       base_r);
  (* The searches still run on the gutted space. *)
  let r = Astar.search p in
  checkb "optimum valid" true (Problem.valid_config p r.Astar.best)

let test_mined_optimum_valid_and_bounded () =
  let s = schema1 () in
  let log = Querygen.generate ~seed:9 ~n:200 s in
  let full = Astar.search (Problem.make s) in
  List.iter
    (fun ms ->
      let m = Miner.mine ~minsup:ms s log in
      let p = Problem.make ~candidates:m.Miner.m_candidates s in
      let r = Astar.search p in
      checkb "valid in mined space" true (Problem.valid_config p r.Astar.best);
      checkb "never beats the unpruned optimum" true
        (r.Astar.best_cost >= full.Astar.best_cost -. 1e-9);
      (* The structural evaluator agrees with the search's cost. *)
      let slow = Problem.make ~slow_cost:true ~candidates:m.Miner.m_candidates s in
      Alcotest.(check (float 1e-9))
        "slow evaluator agrees" r.Astar.best_cost
        (Problem.total slow r.Astar.best))
    [ 0.; 0.1; 0.4 ]

let test_mined_jobs_bit_identical () =
  let s = star8 () in
  let log = Querygen.generate ~seed:42 ~n:400 s in
  let m = Miner.mine ~minsup:0.1 s log in
  let run jobs =
    let p =
      Problem.make ~connected_only:true ~max_view_rels:2
        ~candidates:m.Miner.m_candidates s
    in
    Astar.search_budgeted ~max_expanded:2000 ~beam:64 ~jobs p
  in
  let r1, _ = run 1 and r4, _ = run 4 in
  checkb "same optimum config" true (Config.equal r1.Astar.best r4.Astar.best);
  Alcotest.(check (float 0.)) "same cost bitwise" r1.Astar.best_cost r4.Astar.best_cost;
  checki "same expansions" r1.Astar.stats.Astar.expanded r4.Astar.stats.Astar.expanded;
  checki "same generated" r1.Astar.stats.Astar.generated r4.Astar.stats.Astar.generated

let test_miner_stats_and_itemsets () =
  let s = star8 () in
  let log = Querygen.generate ~seed:42 ~n:400 s in
  let m = Miner.mine ~minsup:0.1 s log in
  let st = m.Miner.m_stats in
  checki "queries" 400 st.Miner.mn_queries;
  checki "threshold" 40 st.Miner.mn_threshold;
  checkb "itemsets found" true (st.Miner.mn_itemsets > 0);
  checkb "attrs pruned" true (st.Miner.mn_frequent_attrs < st.Miner.mn_universe);
  List.iter
    (fun (is : Miner.itemset) ->
      checkb "itemset meets support" true (is.Miner.support >= st.Miner.mn_threshold);
      checkb "itemset nonempty" true (is.Miner.items <> []))
    m.Miner.m_itemsets;
  (* Deterministic: mining twice gives the same result. *)
  checkb "mine deterministic" true (Miner.mine ~minsup:0.1 s log = m)

let () =
  Alcotest.run "vis_workload miner"
    [
      ( "querygen",
        [
          Alcotest.test_case "deterministic" `Quick test_querygen_deterministic;
          Alcotest.test_case "well-formed" `Quick test_querygen_well_formed;
          Alcotest.test_case "drift changes log" `Quick test_querygen_drift_changes_log;
        ] );
      ( "miner",
        [
          Alcotest.test_case "minsup=0 bit-identical" `Quick test_minsup_zero_bit_identical;
          Alcotest.test_case "minsup monotone attrs" `Quick test_minsup_monotone_attrs;
          Alcotest.test_case "mined features subset" `Quick test_mined_features_subset;
          Alcotest.test_case "maintenance keys survive" `Quick test_maintenance_keys_survive;
          Alcotest.test_case "mined optimum valid+bounded" `Quick test_mined_optimum_valid_and_bounded;
          Alcotest.test_case "mined jobs bit-identical" `Quick test_mined_jobs_bit_identical;
          Alcotest.test_case "stats and itemsets" `Quick test_miner_stats_and_itemsets;
        ] );
    ]
