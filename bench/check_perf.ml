(* CI perf-smoke guard: compare the [incremental_costing] and
   [parallel_scaling] studies of a fresh BENCH_vis.json against the
   checked-in baseline and fail when the packed evaluator's work or the
   sharded search's scaling regresses.

     dune exec bench/check_perf.exe -- BENCH_vis.json bench/perf_baseline.json

   Two families of numbers are guarded, both exact and machine-independent
   (so the check is immune to CI timing noise):

   - [cost_evaluations] (configurations costed from scratch plus
     delta-costed ones) per Table 2 schema at jobs=1 — more than 20% above
     baseline fails the build;
   - [modeled_speedup_4] per parallel-scaling case — the deterministic
     replay of the recorded per-round shard work on 4 ideal workers; more
     than 20% below baseline (work re-serialized into fewer, fatter
     shards) fails the build;
   - [wal_syncs] per group-commit row of the storage_engine study — the
     durability barriers one deterministic 8-batch stream pays at group
     sizes 1 and 4; more than 20% above baseline (group commit regressed
     toward per-batch forcing) fails the build;
   - [reopts] and [p99_batch_latency_ms] of the service study — the
     re-optimizations the multi-tenant daemon runs on its fixed drift
     scenario (churn: a trigger-happy monitor or a leaky sensitivity gate
     shows up here) and the simulated-clock p99 batch commit latency;
   - [cost_evaluations_mined] and [reduction_factor] per mined_candidates
     star case — the states the workload-pruned search costs and its
     advantage over the identically-budgeted unpruned search; mined work
     more than 20% above baseline, or a reduction more than 20% below,
     fails the build (the pruning stopped pruning);
   - the corruption study's [checksummed_refresh_io] and [scrub_io] (exact
     page counts of the fault-free checksummed refresh and of one clean
     scrub pass), its [read_overhead_frac] (a float ratio under the
     baseline's float_tolerance), and detection completeness — the
     measured run's [convicted] must equal its [injected], whatever the
     baseline says.

   Integer counters use the fixed 20% tolerance.  Float metrics —
   today only [p99_batch_latency_ms], a simulated-clock figure that
   shifts with any legitimate cost-model retune — use the explicit
   [float_tolerance] the baseline file itself declares, so the slack
   given to float gates is visible and versioned next to the numbers it
   guards rather than buried here.

   Improvements only print; they are recorded by refreshing the
   baseline. *)

module Json = Vis_util.Json

let tolerance = 1.20

let read_json path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Json.of_string s

let rows_by_schema json =
  match Json.member "incremental_costing" json with
  | Json.List rows ->
      List.filter_map
        (fun row ->
          match (Json.member "schema" row, Json.member "jobs" row) with
          | Json.String name, Json.Int 1 ->
              Some (name, Json.to_float (Json.member "cost_evaluations" row))
          | _ -> None)
        rows
  | _ -> []

(* The parallel_scaling study's per-case modeled speedup at 4 workers —
   lower is worse, so the guard direction is inverted vs cost_evaluations. *)
let scaling_by_case json =
  match Json.member "parallel_scaling" json with
  | Json.Obj _ as obj -> (
      match Json.member "cases" obj with
      | Json.List cases ->
          List.filter_map
            (fun case ->
              match
                (Json.member "run" case, Json.member "modeled_speedup_4" case)
              with
              | Json.String name, (Json.Float _ | Json.Int _) ->
                  Some
                    (name, Json.to_float (Json.member "modeled_speedup_4" case))
              | _ -> None)
            cases
      | _ -> [])
  | _ -> []

(* The storage_engine study's exact durability-barrier counts per
   group-commit row, keyed by max_group. *)
let syncs_by_group json =
  match Json.member "storage_engine" json with
  | Json.Obj _ as obj -> (
      match Json.member "group_commit" obj with
      | Json.List rows ->
          List.filter_map
            (fun row ->
              match (Json.member "max_group" row, Json.member "wal_syncs" row) with
              | Json.Int g, Json.Int s -> Some (g, float_of_int s)
              | _ -> None)
            rows
      | _ -> [])
  | _ -> []

(* The service study's deterministic guard pair: re-optimization churn and
   simulated-clock p99 batch latency.  Both are exact in (seed, scenario);
   higher is worse for both. *)
(* The explicit relative tolerance the baseline declares for float
   metrics.  Mandatory: a baseline without it fails loudly rather than
   silently borrowing the integer tolerance. *)
let float_tolerance json =
  match Json.member "float_tolerance" json with
  | Json.Float f when f >= 1. -> f
  | Json.Int i when i >= 1 -> float_of_int i
  | _ ->
      prerr_endline
        "check_perf: baseline lacks a float_tolerance >= 1 for its float \
         metrics";
      exit 2

(* The mined_candidates study's per-case guard pair: the states the
   workload-pruned search costs (lower is better) and its reduction factor
   over the identically-budgeted unpruned search (higher is better). *)
let mined_by_case json =
  match Json.member "mined_candidates" json with
  | Json.Obj _ as obj -> (
      match Json.member "reduction" obj with
      | Json.List rows ->
          List.filter_map
            (fun row ->
              match
                ( Json.member "case" row,
                  Json.member "cost_evaluations_mined" row,
                  Json.member "reduction_factor" row )
              with
              | Json.String name, Json.Int evals, (Json.Float _ | Json.Int _)
                ->
                  Some
                    ( name,
                      ( float_of_int evals,
                        Json.to_float (Json.member "reduction_factor" row) ) )
              | _ -> None)
            rows
      | _ -> [])
  | _ -> []

(* The corruption study's guard set: the fault-free checksummed refresh
   I/O and the clean-scrub I/O (both exact page counts, higher is worse),
   the fault-free read-overhead fraction (a float ratio, gated by the
   baseline's float_tolerance), and detection completeness — convicted
   must equal injected within the measured run itself. *)
let corruption_figures json =
  match Json.member "corruption" json with
  | Json.Obj _ as obj ->
      List.filter_map
        (fun key ->
          match Json.member key obj with
          | Json.Int _ | Json.Float _ ->
              Some (key, Json.to_float (Json.member key obj))
          | _ -> None)
        [
          "checksummed_refresh_io";
          "scrub_io";
          "read_overhead_frac";
          "injected";
          "convicted";
        ]
  | _ -> []

let service_figures json =
  match Json.member "service" json with
  | Json.Obj _ as obj ->
      List.filter_map
        (fun key ->
          match Json.member key obj with
          | Json.Int _ | Json.Float _ ->
              Some (key, Json.to_float (Json.member key obj))
          | _ -> None)
        [ "reopts"; "p99_batch_latency_ms" ]
  | _ -> []

let () =
  let measured_path, baseline_path =
    match Sys.argv with
    | [| _; m; b |] -> (m, b)
    | _ ->
        prerr_endline "usage: check_perf <measured.json> <baseline.json>";
        exit 2
  in
  let measured_json = read_json measured_path in
  let baseline_json = read_json baseline_path in
  let measured = rows_by_schema measured_json in
  let baseline = rows_by_schema baseline_json in
  if baseline = [] then begin
    prerr_endline "check_perf: baseline has no incremental_costing jobs=1 rows";
    exit 2
  end;
  let failures = ref 0 in
  List.iter
    (fun (name, base) ->
      match List.assoc_opt name measured with
      | None ->
          Printf.eprintf "FAIL %-20s missing from measured run\n" name;
          incr failures
      | Some got ->
          let limit = tolerance *. base in
          if got > limit then begin
            Printf.eprintf
              "FAIL %-20s cost_evaluations %.0f > %.0f (baseline %.0f +20%%)\n"
              name got limit base;
            incr failures
          end
          else
            Printf.printf "ok   %-20s cost_evaluations %.0f (baseline %.0f)\n"
              name got base)
    baseline;
  let measured_scaling = scaling_by_case measured_json in
  let baseline_scaling = scaling_by_case baseline_json in
  if baseline_scaling = [] then begin
    prerr_endline "check_perf: baseline has no parallel_scaling cases";
    exit 2
  end;
  List.iter
    (fun (name, base) ->
      match List.assoc_opt name measured_scaling with
      | None ->
          Printf.eprintf "FAIL %-34s missing from measured run\n" name;
          incr failures
      | Some got ->
          let limit = base /. tolerance in
          if got < limit then begin
            Printf.eprintf
              "FAIL %-34s modeled_speedup_4 %.2fx < %.2fx (baseline %.2fx \
               -20%%)\n"
              name got limit base;
            incr failures
          end
          else
            Printf.printf "ok   %-34s modeled_speedup_4 %.2fx (baseline %.2fx)\n"
              name got base)
    baseline_scaling;
  let measured_syncs = syncs_by_group measured_json in
  let baseline_syncs = syncs_by_group baseline_json in
  if baseline_syncs = [] then begin
    prerr_endline "check_perf: baseline has no storage_engine group_commit rows";
    exit 2
  end;
  List.iter
    (fun (group, base) ->
      let name = Printf.sprintf "group commit (max_group %d)" group in
      match List.assoc_opt group measured_syncs with
      | None ->
          Printf.eprintf "FAIL %-34s missing from measured run\n" name;
          incr failures
      | Some got ->
          let limit = tolerance *. base in
          if got > limit then begin
            Printf.eprintf
              "FAIL %-34s wal_syncs %.0f > %.0f (baseline %.0f +20%%)\n" name
              got limit base;
            incr failures
          end
          else
            Printf.printf "ok   %-34s wal_syncs %.0f (baseline %.0f)\n" name
              got base)
    baseline_syncs;
  let measured_service = service_figures measured_json in
  let baseline_service = service_figures baseline_json in
  if baseline_service = [] then begin
    prerr_endline "check_perf: baseline has no service figures";
    exit 2
  end;
  let ftol = float_tolerance baseline_json in
  List.iter
    (fun (key, base) ->
      let name = Printf.sprintf "service %s" key in
      (* p99 is a float metric: simulated-clock milliseconds, not a count.
         It gets the baseline's explicit float_tolerance; the integer
         reopts counter keeps the fixed 20%. *)
      let tol = if key = "p99_batch_latency_ms" then ftol else tolerance in
      match List.assoc_opt key measured_service with
      | None ->
          Printf.eprintf "FAIL %-34s missing from measured run\n" name;
          incr failures
      | Some got ->
          let limit = tol *. base in
          if got > limit then begin
            Printf.eprintf "FAIL %-34s %.2f > %.2f (baseline %.2f +%.0f%%)\n"
              name got limit base ((tol -. 1.) *. 100.);
            incr failures
          end
          else Printf.printf "ok   %-34s %.2f (baseline %.2f)\n" name got base)
    baseline_service;
  let measured_mined = mined_by_case measured_json in
  let baseline_mined = mined_by_case baseline_json in
  if baseline_mined = [] then begin
    prerr_endline "check_perf: baseline has no mined_candidates rows";
    exit 2
  end;
  List.iter
    (fun (case, (base_evals, base_red)) ->
      let name = Printf.sprintf "mined %s" case in
      match List.assoc_opt case measured_mined with
      | None ->
          Printf.eprintf "FAIL %-34s missing from measured run\n" name;
          incr failures
      | Some (got_evals, got_red) ->
          let limit = tolerance *. base_evals in
          if got_evals > limit then begin
            Printf.eprintf
              "FAIL %-34s cost_evaluations_mined %.0f > %.0f (baseline %.0f \
               +20%%)\n"
              name got_evals limit base_evals;
            incr failures
          end
          else
            Printf.printf
              "ok   %-34s cost_evaluations_mined %.0f (baseline %.0f)\n" name
              got_evals base_evals;
          let floor = base_red /. tolerance in
          if got_red < floor then begin
            Printf.eprintf
              "FAIL %-34s reduction_factor %.2fx < %.2fx (baseline %.2fx \
               -20%%)\n"
              name got_red floor base_red;
            incr failures
          end
          else
            Printf.printf "ok   %-34s reduction_factor %.2fx (baseline %.2fx)\n"
              name got_red base_red)
    baseline_mined;
  let measured_corruption = corruption_figures measured_json in
  let baseline_corruption = corruption_figures baseline_json in
  if baseline_corruption = [] then begin
    prerr_endline "check_perf: baseline has no corruption figures";
    exit 2
  end;
  List.iter
    (fun (key, base) ->
      (* injected/convicted are compared against each other below, not
         against the baseline — the damage plan size is a choice, the
         detection of all of it is the invariant. *)
      if key <> "injected" && key <> "convicted" then begin
        let name = Printf.sprintf "corruption %s" key in
        let tol = if key = "read_overhead_frac" then ftol else tolerance in
        match List.assoc_opt key measured_corruption with
        | None ->
            Printf.eprintf "FAIL %-34s missing from measured run\n" name;
            incr failures
        | Some got ->
            let limit = tol *. base in
            if got > limit then begin
              Printf.eprintf "FAIL %-34s %.3f > %.3f (baseline %.3f +%.0f%%)\n"
                name got limit base ((tol -. 1.) *. 100.);
              incr failures
            end
            else Printf.printf "ok   %-34s %.3f (baseline %.3f)\n" name got base
      end)
    baseline_corruption;
  (match
     ( List.assoc_opt "injected" measured_corruption,
       List.assoc_opt "convicted" measured_corruption )
   with
  | Some inj, Some conv when inj > 0. && conv = inj ->
      Printf.printf "ok   %-34s convicted %.0f of %.0f injected\n"
        "corruption detection" conv inj
  | Some inj, Some conv ->
      Printf.eprintf
        "FAIL %-34s convicted %.0f of %.0f injected (must detect all)\n"
        "corruption detection" conv inj;
      incr failures
  | _ ->
      prerr_endline "FAIL corruption detection: injected/convicted missing";
      incr failures);
  if !failures > 0 then begin
    Printf.eprintf
      "check_perf: %d number(s) regressed; if intentional, refresh \
       bench/perf_baseline.json\n"
      !failures;
    exit 1
  end;
  print_endline
    "check_perf: incremental-costing work, parallel scaling, group-commit \
     syncs, service figures, mined-candidate pruning and corruption \
     detection within baseline"
