(* CI perf-smoke guard: compare the [incremental_costing] study of a fresh
   BENCH_vis.json against the checked-in baseline and fail when the packed
   evaluator's work regresses.

     dune exec bench/check_perf.exe -- BENCH_vis.json bench/perf_baseline.json

   The guarded number is [cost_evaluations] (configurations costed from
   scratch plus delta-costed ones) per Table 2 schema at jobs=1 — an exact,
   machine-independent counter, so the check is immune to CI timing noise.
   A measured value more than 20% above baseline fails the build; lower
   values only print (improvements are recorded by refreshing the
   baseline). *)

module Json = Vis_util.Json

let tolerance = 1.20

let read_json path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Json.of_string s

let rows_by_schema json =
  match Json.member "incremental_costing" json with
  | Json.List rows ->
      List.filter_map
        (fun row ->
          match (Json.member "schema" row, Json.member "jobs" row) with
          | Json.String name, Json.Int 1 ->
              Some (name, Json.to_float (Json.member "cost_evaluations" row))
          | _ -> None)
        rows
  | _ -> []

let () =
  let measured_path, baseline_path =
    match Sys.argv with
    | [| _; m; b |] -> (m, b)
    | _ ->
        prerr_endline "usage: check_perf <measured.json> <baseline.json>";
        exit 2
  in
  let measured = rows_by_schema (read_json measured_path) in
  let baseline = rows_by_schema (read_json baseline_path) in
  if baseline = [] then begin
    prerr_endline "check_perf: baseline has no incremental_costing jobs=1 rows";
    exit 2
  end;
  let failures = ref 0 in
  List.iter
    (fun (name, base) ->
      match List.assoc_opt name measured with
      | None ->
          Printf.eprintf "FAIL %-20s missing from measured run\n" name;
          incr failures
      | Some got ->
          let limit = tolerance *. base in
          if got > limit then begin
            Printf.eprintf
              "FAIL %-20s cost_evaluations %.0f > %.0f (baseline %.0f +20%%)\n"
              name got limit base;
            incr failures
          end
          else
            Printf.printf "ok   %-20s cost_evaluations %.0f (baseline %.0f)\n"
              name got base)
    baseline;
  if !failures > 0 then begin
    Printf.eprintf
      "check_perf: %d schema(s) regressed; if intentional, refresh \
       bench/perf_baseline.json\n"
      !failures;
    exit 1
  end;
  print_endline "check_perf: incremental-costing work within baseline"
