(* Reproduction harness: regenerates every experimental table and figure of
   "Physical Database Design for Data Warehouses" (Labio, Quass & Adelberg,
   ICDE 1997), plus the extensions documented in DESIGN.md, and finishes
   with Bechamel timing benches of the optimizer itself.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- quick   -- skip the full exhaustive pass

   The section tags ([Table 2], [Figure 6], ...) match DESIGN.md's
   per-experiment index; EXPERIMENTS.md records paper-vs-measured notes. *)

module Bitset = Vis_util.Bitset
module T = Vis_util.Tableprint
module Schema = Vis_catalog.Schema
module Derived = Vis_catalog.Derived
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config
module Cost = Vis_costmodel.Cost
module Problem = Vis_core.Problem
module Exhaustive = Vis_core.Exhaustive
module Astar = Vis_core.Astar
module Schemas = Vis_workload.Schemas

let quick =
  Array.exists (fun a -> a = "quick") Sys.argv

let section name =
  Printf.printf "\n================ %s ================\n%!" name

(* Machine-readable mirror of the run, written to BENCH_vis.json at the end
   so successive PRs accumulate a perf trajectory (state counts, cache hit
   rates, bechamel timings) that can be diffed mechanically. *)
module Json = Vis_util.Json

let bench_json : (string * Json.t) list ref = ref []

let record key v = bench_json := !bench_json @ [ (key, v) ]

let describe schema config = Config.describe schema config

let pct x = Printf.sprintf "%.2f%%" (100. *. x)

(* The relation sets of Schema 1, by name. *)
let set_st = Bitset.of_list [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* [Figure 5] The experiment schemas. *)

let figure5 () =
  section "[Figure 5] Experiment schemas";
  List.iter
    (fun (name, schema) ->
      Printf.printf "%s:\n%s\n" name (Vis_catalog.Dsl.to_string schema))
    [ ("Schema 1", Schemas.schema1 ()); ("Schema 2", Schemas.schema2 ()) ]

(* ------------------------------------------------------------------ *)
(* [Table 2] A* versus exhaustive search: states considered and pruning.
   Exhaustive is actually run when its space is small enough; for larger
   instances its size is reported analytically (the paper's comparison is
   about state counts; A*'s optimality is verified in the test suite). *)

let table2 () =
  section "[Table 2] A* vs exhaustive search";
  let cases =
    [
      ("2 rel, 1 sel", Schemas.two_relation ());
      ("2 rel, sel 50%", Schemas.two_relation ~sel_s:0.5 ());
      ("3 rel (S1) no del", Schemas.schema1 ~del_frac:0. ());
      ("3 rel Schema 1", Schemas.schema1 ());
      ("3 rel Schema 2", Schemas.schema2 ());
      ("4 rel chain", Schemas.chain ~n:4 ());
    ]
  in
  let tbl =
    T.create
      [ "schema"; "features"; "exhaustive states"; "A* expanded"; "pruned"; "optimal cost" ]
  in
  let rows = ref [] in
  List.iter
    (fun (name, schema) ->
      let p = Problem.make schema in
      let a = Astar.search p in
      let ex_states = a.Astar.stats.Astar.exhaustive_states in
      let exhaustive_checked =
        if ex_states <= 700_000. && not quick then begin
          let ex = Exhaustive.search ~max_states:1_000_000 p in
          assert (
            Vis_util.Num.approx_equal ~eps:1e-9 ex.Exhaustive.best_cost
              a.Astar.best_cost);
          "="
        end
        else "~"
      in
      T.add_row tbl
        [
          name;
          string_of_int (List.length p.Problem.features);
          T.fmt_compact ex_states ^ exhaustive_checked;
          string_of_int a.Astar.stats.Astar.expanded;
          pct (1. -. (float_of_int a.Astar.stats.Astar.expanded /. ex_states));
          T.fmt_compact a.Astar.best_cost;
        ];
      rows :=
        Json.Obj
          [
            ("schema", Json.String name);
            ("features", Json.Int (List.length p.Problem.features));
            ("exhaustive_states", Json.Float ex_states);
            ("optimal_cost", Json.Float a.Astar.best_cost);
            (* null when exhaustive was skipped (quick mode / too large):
               "not checked" is not the same as "disagreed" *)
            ( "exhaustive_agreed",
              if exhaustive_checked = "=" then Json.Bool true else Json.Null );
            ("search", Vis_core.Search_stats.to_json a.Astar.search_stats);
            ("cache", Cost.cache_stats_json p.Problem.cache);
          ]
        :: !rows)
    cases;
  T.print tbl;
  record "table2" (Json.List (List.rev !rows));
  print_endline
    "(= : exhaustive was run and agreed with A*;  ~ : space size computed analytically)"

(* ------------------------------------------------------------------ *)
(* One full enumeration of Schema 1 feeds Figure 4 (per-view-set cost
   ranges) and the low-update half of Figures 10/11 (the space sweep). *)

let figure4 () =
  section "[Figure 4] Update cost per view set (best/worst index set), Schema 1";
  let schema = Schemas.schema1 () in
  let p = Problem.make schema in
  let rows = Exhaustive.per_view_set p in
  let tbl = T.create [ "view set"; "best cost"; "worst cost"; "worst/best" ] in
  List.iter
    (fun (views, lo, hi) ->
      let name =
        match views with
        | [] -> "(none)"
        | vs ->
            String.concat ","
              (List.map (fun w -> Element.name schema (Element.View w)) vs)
      in
      T.add_row tbl
        [ name; T.fmt_compact lo; T.fmt_compact hi; T.fmt_float (hi /. lo) ])
    rows;
  T.print tbl;
  let costs = List.map (fun (_, lo, _) -> lo) rows in
  let best = List.fold_left Float.min infinity costs in
  let near = List.length (List.filter (fun c -> c <= 1.10 *. best) costs) in
  Printf.printf
    "%d of %d view sets are within 10%% of the optimum, and index choice moves\n\
     each view set by the worst/best factor above — both observations of the paper.\n"
    near (List.length costs)

(* ------------------------------------------------------------------ *)
(* [Figure 6] Rule 5.1: materialize selective supporting views.
   We sweep P(ST')/(P(S)+P(T)) by scaling the S–T join selectivity and plot
   the cost ratio of the best no-ST' design over the best with-ST' design
   (index sets optimized on both sides, views otherwise fixed). *)

let ratio_with_without schema =
  let p = Problem.make schema in
  let _, without, _ = Exhaustive.best_indexes_for_views p [] in
  let _, with_st, _ = Exhaustive.best_indexes_for_views p [ set_st ] in
  without /. with_st

let figure6 () =
  section "[Figure 6] Rule 5.1 — cost ratio vs P(ST')/(P(S)+P(T))";
  let tbl =
    T.create [ "P(ST')/(P(S)+P(T))"; "cost ratio (no ST' / with ST')" ]
  in
  List.iter
    (fun scale ->
      (* f2 = scale/T(T) makes T(ST') = scale · T(S) · σ.  Per the paper's
         methodology the other rule's parameters are pinned: no deletions
         (Rule 5.2 satisfied), a healthy insertion stream. *)
      let schema =
        Schemas.schema1 ~ins_frac:0.03 ~del_frac:0.
          ~sel_join_t:(scale /. 10_000.) ()
      in
      let d = Derived.create schema in
      let x =
        Derived.view_pages d set_st
        /. (Derived.base_pages d 1 +. Derived.base_pages d 2)
      in
      T.add_row tbl [ T.fmt_float ~digits:3 x; T.fmt_float (ratio_with_without schema) ])
    [ 0.5; 1.; 2.; 4.; 6.; 8.; 10. ];
  T.print tbl;
  print_endline
    "Ratios above 1.0 favour materializing ST'; the advantage shrinks as the\n\
     view grows relative to its elements (Rule 5.1)."

(* ------------------------------------------------------------------ *)
(* [Figure 7] Rule 5.2: views with no deletions or updates.
   P(ST')/(P(S)+P(T)) pinned near 0.5; the deletion rate to S and T grows. *)

let figure7 () =
  section "[Figure 7] Rule 5.2 — cost ratio vs deletion rate to S and T";
  let tbl = T.create [ "D/T(V) on S,T"; "cost ratio (no ST' / with ST')" ] in
  List.iter
    (fun del ->
      (* Rule 5.1's premise is pinned favourable (P(ST') ≈ half of
         P(S)+P(T)); only the deletion rate to S and T varies. *)
      let base =
        Schemas.schema1 ~ins_frac:0.03 ~sel_join_t:(5. /. 10_000.) ()
      in
      let deltas =
        [
          { Schema.n_ins = 2700.; n_del = 0.; n_upd = 0. };
          { Schema.n_ins = 900.; n_del = del *. 30_000.; n_upd = 0. };
          { Schema.n_ins = 300.; n_del = del *. 10_000.; n_upd = 0. };
        ]
      in
      let schema = Schema.with_deltas base deltas in
      T.add_row tbl
        [ Printf.sprintf "%.3f%%" (100. *. del); T.fmt_float (ratio_with_without schema) ])
    [ 0.; 0.001; 0.0025; 0.005; 0.01; 0.02 ];
  T.print tbl;
  print_endline
    "The benefit of ST' decays as deletions to its base relations grow (Rule 5.2)."

(* ------------------------------------------------------------------ *)
(* [Figure 8] Rule 5.3: absolute size does not matter.
   Everything (cardinalities and deltas) scales together; memory is fixed. *)

let figure8 () =
  section "[Figure 8] Rule 5.3 — scale invariance (fixed memory)";
  let tbl =
    T.create
      [ "scale"; "cost without ST'"; "cost with ST'"; "ratio" ]
  in
  List.iter
    (fun scale ->
      let schema = Schemas.schema1 ~base_card:(10_000. *. scale) () in
      let p = Problem.make schema in
      let _, without, _ = Exhaustive.best_indexes_for_views p [] in
      let _, with_st, _ = Exhaustive.best_indexes_for_views p [ set_st ] in
      T.add_row tbl
        [
          Printf.sprintf "%.2fx" scale;
          T.fmt_compact without;
          T.fmt_compact with_st;
          T.fmt_float (without /. with_st);
        ])
    [ 0.25; 0.5; 1.; 2.; 4.; 8. ];
  T.print tbl;
  print_endline
    "The with/without decision is essentially unchanged across an order of\n\
     magnitude of database sizes (Rule 5.3: size does not matter)."

(* ------------------------------------------------------------------ *)
(* [Figure 9] Rule 5.4: the insertion rate does not matter when there are
   no deletions or updates — but does when there are. *)

let figure9 () =
  section "[Figure 9] Rule 5.4 — insertion rate, with and without deletions";
  let tbl =
    T.create
      [ "insert frac"; "ratio (D=U=0)"; "ratio (D=I/100)" ]
  in
  List.iter
    (fun ins ->
      let no_del = Schemas.schema1 ~ins_frac:ins ~del_frac:0. () in
      let with_del = Schemas.schema1 ~ins_frac:ins ~del_frac:(ins /. 100.) () in
      T.add_row tbl
        [
          Printf.sprintf "%.2f%%" (100. *. ins);
          T.fmt_float (ratio_with_without no_del);
          T.fmt_float (ratio_with_without with_del);
        ])
    [ 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05 ];
  T.print tbl;
  print_endline
    "With no deletions the ratio stays flat in the insertion rate; with even\n\
     1%-of-insertions deletions the rate starts to matter (Rule 5.4)."

(* ------------------------------------------------------------------ *)
(* [Figure 10] and [Figure 11]: the space-constrained study under a low and
   a high update load. *)

let space_study name schema =
  let p = Problem.make schema in
  let sw = Vis_core.Space.sweep ~max_states:1_200_000 p in
  Printf.printf
    "\n%s: base relations %.0f pages, unconstrained optimum %s I/Os\n" name
    sw.Vis_core.Space.sw_base_pages
    (T.fmt_compact sw.Vis_core.Space.sw_unconstrained_cost);
  let tbl =
    T.create [ "space (pages)"; "space/base"; "cost/optimal"; "design change" ]
  in
  List.iter
    (fun st ->
      T.add_row tbl
        [
          T.fmt_compact st.Vis_core.Space.st_space;
          T.fmt_float ~digits:3
            (st.Vis_core.Space.st_space /. sw.Vis_core.Space.sw_base_pages);
          T.fmt_float ~digits:3
            (st.Vis_core.Space.st_cost /. sw.Vis_core.Space.sw_unconstrained_cost);
          String.concat ", "
            (List.map (fun s -> "+" ^ s) st.Vis_core.Space.st_added
            @ List.map (fun s -> "-" ^ s) st.Vis_core.Space.st_dropped);
        ])
    sw.Vis_core.Space.sw_steps;
  T.print tbl;
  Printf.printf "[Figure 11] feature-addition order (%s):\n" name;
  List.iteri
    (fun i (feat, budget) ->
      Printf.printf "  %d. %-22s first affordable at %.0f pages\n" (i + 1) feat
        budget)
    (Vis_core.Space.feature_order sw)

let figure10_11 () =
  section "[Figure 10/11] Space-constrained designs, Schema 1";
  if quick then print_endline "(skipped in quick mode)"
  else begin
    (* The paper's regime: deltas small relative to the relations, so index
       probes genuinely beat scans and the staircase is rich.  Load (b)
       ships 10x load (a). *)
    space_study "(a) low update load"
      (Schemas.schema1 ~base_card:40_000. ~ins_frac:0.001 ~del_frac:0.0002
         ~upd_frac:0.002 ());
    space_study "(b) high update load"
      (Schemas.schema1 ~base_card:40_000. ~ins_frac:0.01 ~del_frac:0.002
         ~upd_frac:0.02 ())
  end

(* ------------------------------------------------------------------ *)
(* [Figure 12] Sensitivity of the optimum to the insertion-deletion rate. *)

let figure12 () =
  section "[Figure 12] Sensitivity to the estimated insertion+deletion rate";
  let rates = [ 0.001; 0.00316; 0.01; 0.0316; 0.1 ] in
  let make rate =
    Schemas.schema1 ~ins_frac:(rate /. 2.) ~del_frac:(rate /. 2.) ()
  in
  let series = Vis_core.Sensitivity.sweep ~make_schema:make ~values:rates in
  let tbl =
    T.create
      ("estimated \\ actual"
      :: List.map (fun r -> Printf.sprintf "%g" r) rates)
  in
  List.iter
    (fun s ->
      T.add_row tbl
        (Printf.sprintf "%g" s.Vis_core.Sensitivity.se_estimate
        :: List.map
             (fun (_, ratio) -> T.fmt_float ratio)
             s.Vis_core.Sensitivity.se_ratios))
    series;
  T.print tbl;
  print_endline
    "Each row: the design optimized for the estimated rate, costed across the\n\
     actual rates and normalized by the optimum there (1.00 = no loss).  The\n\
     optimum is insensitive except when the estimate crosses the region where\n\
     indexes stop paying off — the paper's observation."

(* ------------------------------------------------------------------ *)
(* [Extra 1] Cost-model validation on the executable storage engine. *)

let extra1 () =
  section "[Extra 1] Executed refresh: predicted vs measured I/O";
  let schema = Schemas.validation () in
  let p = Problem.make schema in
  let optimal = (Astar.search p).Astar.best in
  let advice = (Vis_core.Rules.advise p).Vis_core.Rules.a_config in
  let everything =
    Config.make ~views:p.Problem.candidate_views
      ~indexes:(Problem.indexes_for_views p p.Problem.candidate_views)
  in
  let tbl =
    T.create [ "design"; "predicted"; "measured"; "reads"; "writes"; "views exact" ]
  in
  List.iter
    (fun (name, config) ->
      let report, checks = Vis_maintenance.Validate.run_cycle schema config in
      T.add_row tbl
        [
          name;
          T.fmt_compact report.Vis_maintenance.Refresh.rp_predicted;
          string_of_int (Vis_maintenance.Refresh.total_io report);
          string_of_int report.Vis_maintenance.Refresh.rp_reads;
          string_of_int report.Vis_maintenance.Refresh.rp_writes;
          (if Vis_maintenance.Validate.all_ok checks then "yes" else "NO");
        ])
    [
      ("nothing extra", Config.empty);
      ("rules of thumb", advice);
      ("optimal (A*)", optimal);
      ("everything", everything);
    ];
  T.print tbl;
  print_endline
    "Every executed refresh leaves all materialized views exactly equal to\n\
     their from-scratch recomputation; the model orders the designs correctly."

(* ------------------------------------------------------------------ *)
(* [Extra 2] Greedy heuristic vs A*: solution quality and effort. *)

let extra2 () =
  section "[Extra 2] Greedy heuristic vs optimal A*";
  let tbl =
    T.create
      [ "schema"; "greedy cost"; "optimal cost"; "quality"; "greedy evals"; "A* expanded" ]
  in
  List.iter
    (fun (name, schema) ->
      let p = Problem.make schema in
      let g = Vis_core.Greedy.search p in
      (* On the 5-relation chain even the improved A* exceeds a sensible
         budget — the paper's own motivation for heuristics; the anytime
         variant reports its best incumbent instead. *)
      let a, optimal = Astar.search_anytime ~max_expanded:150_000 p in
      T.add_row tbl
        [
          name;
          T.fmt_compact g.Vis_core.Greedy.best_cost;
          T.fmt_compact a.Astar.best_cost ^ (if optimal then "" else "*");
          T.fmt_float (g.Vis_core.Greedy.best_cost /. a.Astar.best_cost);
          string_of_int g.Vis_core.Greedy.evaluations;
          string_of_int a.Astar.stats.Astar.expanded;
        ])
    [
      ("2 relations", Schemas.two_relation ());
      ("Schema 1", Schemas.schema1 ());
      ("Schema 2", Schemas.schema2 ());
      ("4-relation chain", Schemas.chain ~n:4 ());
      ("5-relation chain", Schemas.chain ~n:5 ());
    ];
  T.print tbl;
  print_endline
    "(* : A* budget of 150k states exhausted; its best incumbent is shown —\n\
     optimal search is impractical there, which is the paper's case for rules\n\
     of thumb and limited search.)"

(* ------------------------------------------------------------------ *)
(* [Extra 3] Rules-of-thumb advisor vs optimal. *)

let extra3 () =
  section "[Extra 3] Rules-of-thumb advisor vs optimal";
  let tbl = T.create [ "schema"; "advised cost"; "optimal cost"; "quality" ] in
  List.iter
    (fun (name, schema) ->
      let p = Problem.make schema in
      let advice = Vis_core.Rules.advise p in
      let cost = Problem.total p advice.Vis_core.Rules.a_config in
      let a = Astar.search p in
      T.add_row tbl
        [
          name;
          T.fmt_compact cost;
          T.fmt_compact a.Astar.best_cost;
          T.fmt_float (cost /. a.Astar.best_cost);
        ])
    [
      ("2 relations", Schemas.two_relation ());
      ("Schema 1", Schemas.schema1 ());
      ("Schema 2", Schemas.schema2 ());
      ("validation", Schemas.validation ());
      ("4-relation chain", Schemas.chain ~n:4 ());
    ];
  T.print tbl;
  Printf.printf "\nOptimal configurations for reference:\n";
  List.iter
    (fun (name, schema) ->
      let p = Problem.make schema in
      let a = Astar.search p in
      Printf.printf "  %-10s %s\n" name (describe schema a.Astar.best))
    [ ("Schema 1", Schemas.schema1 ()); ("Schema 2", Schemas.schema2 ()) ]

(* ------------------------------------------------------------------ *)
(* [Extra 4] Should protected updates be propagated atomically or split
   into deletion+insertion pairs?  (Considered in Section 6 / the full
   version of the paper.)  We cost the optimal design under both
   treatments of the same batch. *)

let extra4 () =
  section "[Extra 4] Protected updates: atomic vs split into delete+insert";
  let tbl =
    T.create [ "update frac"; "atomic (optimal)"; "split (optimal)"; "split/atomic" ]
  in
  let ratios = ref [] in
  List.iter
    (fun upd ->
      let atomic = Schemas.schema1 ~ins_frac:0.005 ~del_frac:0.001 ~upd_frac:upd () in
      let split =
        Schema.with_deltas atomic
          (List.init 3 (fun i ->
               let d = Schema.delta atomic i in
               {
                 Schema.n_ins = d.Schema.n_ins +. d.Schema.n_upd;
                 n_del = d.Schema.n_del +. d.Schema.n_upd;
                 n_upd = 0.;
               }))
      in
      let optimal schema = (Astar.search (Problem.make schema)).Astar.best_cost in
      let a = optimal atomic and s = optimal split in
      ratios := (s /. a) :: !ratios;
      T.add_row tbl
        [
          Printf.sprintf "%.1f%%" (100. *. upd);
          T.fmt_compact a;
          T.fmt_compact s;
          T.fmt_float (s /. a);
        ])
    [ 0.001; 0.005; 0.01; 0.02 ];
  T.print tbl;
  if List.for_all (fun r -> r < 1.) !ratios then
    print_endline
      "Under the Section-3.2 model — every delta type is propagated in its own\n\
       pass — splitting wins here: the update batch merges into the deletion\n\
       and insertion passes instead of paying a separate locate scan per\n\
       element, and that saving outweighs the extra index maintenance and view\n\
       appends the split incurs.  Atomic treatment regains ground only when\n\
       key-index probing makes the extra locate pass cheap relative to the\n\
       split's insert propagation."
  else
    print_endline
      "Atomic treatment wins where the extra locate pass is cheap (key-index\n\
       probing) relative to the split's added insert propagation and index\n\
       maintenance."

(* ------------------------------------------------------------------ *)
(* [Extra 5] Local search (add/drop/swap hill climbing) vs greedy vs A*. *)

let extra5 () =
  section "[Extra 5] Local search vs greedy vs optimal";
  let tbl =
    T.create
      [ "schema"; "greedy"; "local search"; "optimal"; "ls evals"; "ls moves" ]
  in
  List.iter
    (fun (name, schema) ->
      let p = Problem.make schema in
      let g = Vis_core.Greedy.search p in
      let ls = Vis_core.Local_search.search p in
      let a, optimal = Astar.search_anytime ~max_expanded:150_000 p in
      T.add_row tbl
        [
          name;
          T.fmt_compact g.Vis_core.Greedy.best_cost;
          T.fmt_compact ls.Vis_core.Local_search.best_cost;
          T.fmt_compact a.Astar.best_cost ^ (if optimal then "" else "*");
          string_of_int ls.Vis_core.Local_search.evaluations;
          string_of_int ls.Vis_core.Local_search.moves;
        ])
    [
      ("Schema 1", Schemas.schema1 ());
      ("Schema 2", Schemas.schema2 ());
      ("high-update S1", Schemas.schema1 ~ins_frac:0.05 ~del_frac:0.01 ());
      ("4-relation chain", Schemas.chain ~n:4 ());
    ];
  T.print tbl

(* ------------------------------------------------------------------ *)
(* [Extra 6] Cost-cache effectiveness: A* with the problem-wide shared
   memoization versus the same search where every configuration gets a
   private cache.  The shared cache must cut actual cost derivations by at
   least 2x (hits / misses bookkeeping) while leaving the optimum — the
   configuration itself and its cost — bit-identical. *)

let cache_study () =
  section "[Extra 6] Cost-cache effectiveness (shared memoization)";
  let tbl =
    T.create
      [ "schema"; "hits"; "misses"; "hit rate"; "work cut"; "same optimum" ]
  in
  let entries = ref [] in
  List.iter
    (fun (name, required_factor, schema) ->
      let p = Problem.make schema in
      let shared = Astar.search p in
      let s = Cost.cache_stats p.Problem.cache in
      let lookups = s.Cost.cs_hits + s.Cost.cs_misses in
      let factor =
        float_of_int lookups /. float_of_int (max 1 s.Cost.cs_misses)
      in
      let p_private = Problem.make ~share_cache:false schema in
      let private_ = Astar.search p_private in
      let same =
        Vis_util.Num.approx_equal ~eps:1e-9 shared.Astar.best_cost
          private_.Astar.best_cost
        && Config.equal shared.Astar.best private_.Astar.best
      in
      assert same;
      assert (factor >= required_factor);
      T.add_row tbl
        [
          name;
          string_of_int s.Cost.cs_hits;
          string_of_int s.Cost.cs_misses;
          pct (Cost.hit_rate s);
          Printf.sprintf "%.1fx" factor;
          (if same then "yes" else "NO");
        ];
      entries :=
        Json.Obj
          [
            ("schema", Json.String name);
            ("hits", Json.Int s.Cost.cs_hits);
            ("misses", Json.Int s.Cost.cs_misses);
            ("hit_rate", Json.Float (Cost.hit_rate s));
            ("work_reduction_factor", Json.Float factor);
            ("identical_optimum", Json.Bool same);
          ]
        :: !entries)
    [
      ("Schema 1 (retail)", 2., Schemas.schema1 ());
      ("Schema 2", 2., Schemas.schema2 ());
      ("2 relations", 1., Schemas.two_relation ());
      ("4-relation chain", 2., Schemas.chain ~n:4 ());
    ];
  T.print tbl;
  record "cache_effectiveness" (Json.List (List.rev !entries));
  print_endline
    "Shared memoization cuts cost-model derivations by the \"work cut\" factor\n\
     (lookups / misses) at an unchanged optimal design — the caching is\n\
     semantically invisible."

(* ------------------------------------------------------------------ *)
(* [Extra 7] Coarse-grained parallel scaling of the search (--jobs).
   The exhaustive Table-2 sweep, the sharded A* on the small schemas, and
   the budgeted sharded A* on generated 8-relation star / 7-relation
   snowflake warehouses are timed at several pool widths; every run is
   asserted bit-identical to the jobs=1 baseline (same configuration, same
   cost, same counters, same certificate), so the study doubles as a
   determinism check.

   Two speedup numbers are reported per case.  Wall-clock speedup is
   machine truth: on a single-core host the extra domains only add
   contention and the recorded ratios honestly reflect that.  The modeled
   speedup replays the recorded per-exchange-round shard work counts on k
   ideal workers ({!Vis_core.Search_stats.modeled_speedup}) — it is exact,
   machine-independent, identical at every jobs setting, and is the number
   the CI perf gate guards. *)

let parallel_scaling () =
  section "[Extra 7] Coarse-grained parallel scaling (--jobs)";
  let cores = Domain.recommended_domain_count () in
  let jobs_list = List.sort_uniq compare [ 1; 2; 4; cores ] in
  Printf.printf
    "machine reports %d core(s); timing jobs in {%s}\n\
     wall seconds are machine truth; modeled speedups replay the recorded\n\
     per-round shard work on k ideal workers (machine-independent)\n%!"
    cores
    (String.concat ", " (List.map string_of_int jobs_list));
  let limit = if quick then 100_000. else 700_000. in
  let cases =
    List.filter
      (fun (_, schema) -> Exhaustive.count_states (Problem.make schema) <= limit)
      [
        ("2 rel, 1 sel", Schemas.two_relation ());
        ("2 rel, sel 50%", Schemas.two_relation ~sel_s:0.5 ());
        ("3 rel (S1) no del", Schemas.schema1 ~del_frac:0. ());
        ("3 rel Schema 1", Schemas.schema1 ());
      ]
  in
  let entries = ref [] in
  let tbl =
    T.create [ "run"; "rel"; "jobs"; "seconds"; "wall speedup"; "identical" ]
  in
  let modeled_tbl =
    T.create
      [ "run"; "rel"; "rounds"; "work units"; "@2"; "@4"; "@8" ]
  in
  let time_run f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* [floor4]: minimum admissible modeled speedup at 4 workers — the
     scaling regression tripwire (also guarded by bench/check_perf.exe
     against bench/perf_baseline.json). *)
  let study ~name ~relations ~run ~same ~stats ?floor4 () =
    let baseline = ref None in
    let base_seconds = ref nan in
    let rows = ref [] in
    List.iter
      (fun jobs ->
        let r, dt = time_run (fun () -> run jobs) in
        let identical =
          match !baseline with
          | None ->
              baseline := Some r;
              base_seconds := dt;
              true
          | Some b -> same b r
        in
        assert identical;
        let speedup = !base_seconds /. dt in
        T.add_row tbl
          [
            name;
            string_of_int relations;
            string_of_int jobs;
            Printf.sprintf "%.3f" dt;
            Printf.sprintf "%.2fx" speedup;
            (if identical then "yes" else "NO");
          ];
        rows :=
          Json.Obj
            [
              ("jobs", Json.Int jobs);
              ("seconds", Json.Float dt);
              ("wall_speedup", Json.Float speedup);
              ("identical", Json.Bool identical);
            ]
          :: !rows)
      jobs_list;
    let s = stats (Option.get !baseline) in
    let modeled k =
      Option.value ~default:1. (Vis_core.Search_stats.modeled_speedup s ~jobs:k)
    in
    let m2 = modeled 2 and m4 = modeled 4 and m8 = modeled 8 in
    T.add_row modeled_tbl
      [
        name;
        string_of_int relations;
        string_of_int (Vis_core.Search_stats.round_count s);
        string_of_int (Vis_core.Search_stats.round_work s);
        Printf.sprintf "%.2fx" m2;
        Printf.sprintf "%.2fx" m4;
        Printf.sprintf "%.2fx" m8;
      ];
    (match floor4 with
    | Some f when m4 < f ->
        failwith
          (Printf.sprintf
             "%s: modeled speedup @4 = %.2fx below the %.2fx floor" name m4 f)
    | Some _ | None -> ());
    entries :=
      Json.Obj
        [
          ("run", Json.String name);
          ("relations", Json.Int relations);
          ("sharded_rounds", Json.Int (Vis_core.Search_stats.round_count s));
          ("round_work", Json.Int (Vis_core.Search_stats.round_work s));
          ("modeled_speedup_2", Json.Float m2);
          ("modeled_speedup_4", Json.Float m4);
          ("modeled_speedup_8", Json.Float m8);
          ("runs", Json.List (List.rev !rows));
        ]
      :: !entries
  in
  let same_astar b r =
    Config.equal b.Astar.best r.Astar.best
    && b.Astar.best_cost = r.Astar.best_cost
    && b.Astar.stats.Astar.expanded = r.Astar.stats.Astar.expanded
    && b.Astar.stats.Astar.generated = r.Astar.stats.Astar.generated
  in
  List.iter
    (fun (name, schema) ->
      study
        ~name:("exhaustive " ^ name)
        ~relations:(Schema.n_relations schema)
        ~run:(fun jobs ->
          (* a fresh problem per run: no cross-run cache warming *)
          Exhaustive.search ~jobs ~max_states:1_000_000 (Problem.make schema))
        ~same:(fun b r ->
          Config.equal b.Exhaustive.best r.Exhaustive.best
          && b.Exhaustive.best_cost = r.Exhaustive.best_cost
          && b.Exhaustive.states = r.Exhaustive.states)
        ~stats:(fun r -> r.Exhaustive.search_stats)
        ())
    cases;
  (* Small schemas with the sharded mode forced on: optimality still
     proven, exchange rounds exercised. *)
  List.iter
    (fun (name, schema) ->
      study
        ~name:("A* sharded " ^ name)
        ~relations:(Schema.n_relations schema)
        ~run:(fun jobs -> Astar.search ~jobs ~shard:true (Problem.make schema))
        ~same:same_astar
        ~stats:(fun r -> r.Astar.search_stats)
        ())
    [
      ("Schema 1", Schemas.schema1 ());
      ("4-relation chain", Schemas.chain ~n:4 ());
    ];
  (* Generated warehouse schemas: full optimality is intractable here
     (the candidate lattice is capped to 2-relation views and the search
     budgeted), so the runs use the anytime mode — same budget in quick
     and full mode, keeping the guarded modeled speedups comparable. *)
  let budgeted_case (name, relations, floor4, mk) =
    study ~name ~relations
      ~run:(fun jobs ->
        Astar.search_budgeted ~max_expanded:2_000 ~beam:64 ~jobs (mk ()))
      ~same:(fun (b, cb) (r, cr) ->
        Config.equal b.Astar.best r.Astar.best
        && b.Astar.best_cost = r.Astar.best_cost
        && b.Astar.stats.Astar.expanded = r.Astar.stats.Astar.expanded
        && b.Astar.stats.Astar.generated = r.Astar.stats.Astar.generated
        && cb = cr)
      ~stats:(fun (r, _) -> r.Astar.search_stats)
      ?floor4 ()
  in
  List.iter budgeted_case
    [
      ( "A* sharded star-8 (budgeted)",
        8,
        Some 1.5,
        fun () ->
          Problem.make ~connected_only:true ~max_view_rels:2
            (Schemas.star ~n_dims:7 ()) );
      ( "A* sharded snowflake-7 (budgeted)",
        7,
        Some 1.5,
        fun () ->
          Problem.make ~connected_only:true ~max_view_rels:2
            (Schemas.snowflake ~arms:3 ~depth:2 ()) );
    ];
  T.print tbl;
  print_endline "modeled scaling (deterministic, from recorded round work):";
  T.print modeled_tbl;
  record "parallel_scaling"
    (Json.Obj
       [
         ("cores", Json.Int cores);
         ("cases", Json.List (List.rev !entries));
       ]);
  print_endline
    "Every parallel run returned the same configuration, cost, counters and\n\
     certificate as jobs=1 (the determinism guarantee).  Wall speedups\n\
     depend on the machine's core count above; the modeled speedups are the\n\
     machine-independent scaling of the recorded shard work and gate the\n\
     perf smoke (bench/check_perf.exe)."

(* ------------------------------------------------------------------ *)
(* [Extra 9] Incremental delta-costing: the packed search path costs each
   successor from its parent's per-element evaluation, so only a handful of
   configurations are ever costed from scratch.  The study runs A* on the
   Table 2 schemas at jobs in {1, 4}, reports the exact evaluator work
   (full / delta / reused counters are atomics in the encoding), and at
   jobs=1 re-runs the search through the VISMAT_SLOW_COST structural path,
   asserting the optimum, its cost, and the expansion count are
   bit-identical.  [cost_evaluations] (full + delta) is deterministic at
   any jobs setting and is the number the CI perf-smoke guards. *)

let incremental_costing () =
  section "[Extra 9] Incremental delta-costing (packed states)";
  let cases =
    [
      ("2 rel, 1 sel", Schemas.two_relation ());
      ("2 rel, sel 50%", Schemas.two_relation ~sel_s:0.5 ());
      ("3 rel (S1) no del", Schemas.schema1 ~del_frac:0. ());
      ("3 rel Schema 1", Schemas.schema1 ());
      ("3 rel Schema 2", Schemas.schema2 ());
      ("4 rel chain", Schemas.chain ~n:4 ());
    ]
  in
  let tbl =
    T.create
      [
        "schema";
        "jobs";
        "full evals";
        "delta evals";
        "reused";
        "evals saved";
        "states/sec";
        "fast=slow";
      ]
  in
  let rows = ref [] in
  List.iter
    (fun (name, schema) ->
      List.iter
        (fun jobs ->
          let p = Problem.make schema in
          match p.Problem.encoding with
          | None -> ()
          | Some enc ->
              let t0 = Unix.gettimeofday () in
              let a = Astar.search ~jobs p in
              let dt = Unix.gettimeofday () -. t0 in
              let s = Cost.incr_stats enc in
              let states =
                s.Cost.is_full + s.Cost.is_delta + s.Cost.is_reused
              in
              let factor =
                float_of_int states /. float_of_int (max 1 s.Cost.is_full)
              in
              let states_per_sec = float_of_int states /. Float.max dt 1e-9 in
              let agreed =
                if jobs = 1 then begin
                  let slow = Problem.make ~slow_cost:true schema in
                  let b = Astar.search ~jobs:1 slow in
                  let same =
                    b.Astar.best_cost = a.Astar.best_cost
                    && Config.equal b.Astar.best a.Astar.best
                    && b.Astar.stats.Astar.expanded = a.Astar.stats.Astar.expanded
                  in
                  assert same;
                  Json.Bool same
                end
                else Json.Null (* checked at jobs=1; identical by determinism *)
              in
              if name = "4 rel chain" && jobs = 1 then assert (factor >= 3.);
              T.add_row tbl
                [
                  name;
                  string_of_int jobs;
                  string_of_int s.Cost.is_full;
                  string_of_int s.Cost.is_delta;
                  string_of_int s.Cost.is_reused;
                  Printf.sprintf "%.1fx" factor;
                  T.fmt_compact states_per_sec;
                  (match agreed with Json.Bool true -> "yes" | _ -> "-");
                ];
              rows :=
                Json.Obj
                  [
                    ("schema", Json.String name);
                    ("jobs", Json.Int jobs);
                    ("full_evals", Json.Int s.Cost.is_full);
                    ("delta_evals", Json.Int s.Cost.is_delta);
                    ("reused_evals", Json.Int s.Cost.is_reused);
                    ("elems_computed", Json.Int s.Cost.is_elems_computed);
                    ("elems_copied", Json.Int s.Cost.is_elems_copied);
                    ("cost_evaluations", Json.Int (s.Cost.is_full + s.Cost.is_delta));
                    ("eval_reduction_factor", Json.Float factor);
                    ("states_per_sec", Json.Float states_per_sec);
                    ("seconds", Json.Float dt);
                    ("slow_path_agreed", agreed);
                  ]
                :: !rows)
        [ 1; 4 ])
    cases;
  T.print tbl;
  record "incremental_costing" (Json.List (List.rev !rows));
  print_endline
    "\"evals saved\": states costed per configuration costed from scratch —\n\
     delta-costing re-derives only the elements a flipped feature can affect.\n\
     At jobs=1 every schema was re-searched through the VISMAT_SLOW_COST\n\
     structural evaluator and agreed bit-for-bit (optimum, cost, expansions)."

(* ------------------------------------------------------------------ *)
(* [Extra 10] Fault-injected refresh: the page I/O cost of WAL protection
   on the fault-free path (must stay within 5% of the unprotected
   refresh), and what a crash-retry, a forced rollback and a degradation
   to view recomputation cost on the same batch. *)

let extra10 () =
  section "[Extra 10] Fault-injected refresh: WAL overhead and recovery";
  let module Datagen = Vis_workload.Datagen in
  let module Warehouse = Vis_maintenance.Warehouse in
  let module Refresh = Vis_maintenance.Refresh in
  let module Faults = Vis_storage.Faults in
  let schema = Schemas.validation () in
  let best = (Astar.search (Problem.make schema)).Astar.best in
  let seed = 42 in
  let world () =
    let rng = Random.State.make [| seed |] in
    let ds = Datagen.generate ~rng schema in
    let w = Warehouse.build schema best ds in
    let batch = Datagen.deltas ~rng schema ds in
    (w, batch)
  in
  let w0, b0 = world () in
  let r0 = Refresh.run w0 b0 in
  let base_io = Refresh.total_io r0 in
  let reference = Warehouse.signature w0 in
  let logical_reference = Warehouse.logical_signature w0 in
  let tbl =
    T.create
      [ "scenario"; "I/O"; "attempts"; "rollbacks"; "undone"; "wal rec"; "outcome" ]
  in
  let rows = ref [] in
  let overhead = ref 0. in
  let scenario name plan =
    let w, b = world () in
    let io, stats, outcome =
      match Refresh.run_protected ?faults:plan w b with
      | Ok (r, fs) ->
          let outcome =
            if fs.Refresh.fs_degraded then
              if Warehouse.logical_signature w = logical_reference then
                "degraded, logically exact"
              else "DEGRADED MISMATCH"
            else if Warehouse.signature w = reference then "bit-identical"
            else "STATE MISMATCH"
          in
          (Refresh.total_io r, fs, outcome)
      | Error e ->
          let io =
            w.Warehouse.w_stats |> fun s ->
            Vis_storage.Iostats.reads s + Vis_storage.Iostats.writes s
          in
          (io, e.Refresh.err_stats, "rolled back to pre-batch")
    in
    if name = "WAL, no faults" then begin
      overhead := float_of_int (io - base_io) /. float_of_int base_io;
      (* Tightened from 10% in PR 7: group commit removed the per-batch
         sync forcing, so the log pages are the only overhead left. *)
      assert (!overhead <= 0.05)
    end;
    T.add_row tbl
      [
        name;
        string_of_int io;
        string_of_int stats.Refresh.fs_attempts;
        string_of_int stats.Refresh.fs_rollbacks;
        string_of_int stats.Refresh.fs_undone;
        string_of_int stats.Refresh.fs_wal_records;
        outcome;
      ];
    rows :=
      Json.Obj
        [
          ("scenario", Json.String name);
          ("io", Json.Int io);
          ("attempts", Json.Int stats.Refresh.fs_attempts);
          ("injected", Json.Int stats.Refresh.fs_injected);
          ("retries", Json.Int stats.Refresh.fs_retries);
          ("backoff_ms", Json.Float stats.Refresh.fs_backoff_ms);
          ("rollbacks", Json.Int stats.Refresh.fs_rollbacks);
          ("undone", Json.Int stats.Refresh.fs_undone);
          ("degraded", Json.Bool stats.Refresh.fs_degraded);
          ("wal_records", Json.Int stats.Refresh.fs_wal_records);
          ("wal_pages", Json.Int stats.Refresh.fs_wal_pages);
          ("recomputed_rows", Json.Int stats.Refresh.fs_recomputed_rows);
          ("outcome", Json.String outcome);
        ]
      :: !rows
  in
  T.add_row tbl
    [ "unprotected"; string_of_int base_io; "1"; "0"; "0"; "0"; "reference" ];
  scenario "WAL, no faults" None;
  scenario "transient write fault"
    (Some
       (Faults.make
          [ Faults.Fail_nth { op = Some Faults.Write; n = 10; kind = Faults.Transient } ]));
  scenario "mid-batch crash"
    (Some
       (Faults.make
          [ Faults.Fail_nth { op = Some Faults.Write; n = 25; kind = Faults.Crash } ]));
  scenario "permanent fault, degraded"
    (Some
       (Faults.make
          [ Faults.Fail_nth { op = None; n = 120; kind = Faults.Permanent } ]));
  scenario "permanent media failure"
    (Some
       (Faults.make
          [ Faults.Fail_prob { op = Some Faults.Write; p = 1.0; kind = Faults.Permanent } ]));
  T.print tbl;
  Printf.printf
    "WAL overhead on the fault-free refresh: %d -> %d page I/Os (%s).\n"
    base_io
    (base_io + int_of_float (Float.round (!overhead *. float_of_int base_io)))
    (pct !overhead);
  print_endline
    "Every scenario ends in a provable state: bit-identical to the fault-free\n\
     refresh, logically identical with recomputed views (degraded), or the\n\
     exact pre-batch state (all attempts rolled back).";
  record "fault_recovery"
    (Json.Obj
       [
         ("schema", Json.String "validation");
         ("seed", Json.Int seed);
         ("unprotected_io", Json.Int base_io);
         ("wal_overhead_frac", Json.Float !overhead);
         ("wal_overhead_limit", Json.Float 0.05);
         ("scenarios", Json.List (List.rev !rows));
       ])

(* ------------------------------------------------------------------ *)
(* [Extra 11] Storage engine raw speed: group-commit WAL (durability
   barriers vs commit latency at group sizes 1 and 4), the fault-free WAL
   overhead under the tightened 5% budget, and page-level compression's
   effect on the durable footprint.  Every recorded number is exact and
   machine-independent; check_perf guards the sync counts. *)

let extra11 () =
  section "[Extra 11] Storage engine: group commit and compression";
  let module Datagen = Vis_workload.Datagen in
  let module Warehouse = Vis_maintenance.Warehouse in
  let module Refresh = Vis_maintenance.Refresh in
  let module Wal = Vis_storage.Wal in
  let schema = Schemas.validation () in
  let best = (Astar.search (Problem.make schema)).Astar.best in
  let seed = 42 in
  let n_batches = 8 in
  (* Deal one batch into conflict-free sub-batches (keys within a batch are
     distinct, so any partition applies cleanly in stream order). *)
  let split_batch k (b : Datagen.batch) =
    let deal j l = List.filteri (fun i _ -> i mod k = j) l in
    List.init k (fun j ->
        {
          Datagen.b_ins = Array.map (deal j) b.Datagen.b_ins;
          b_del = Array.map (deal j) b.Datagen.b_del;
          b_upd = Array.map (deal j) b.Datagen.b_upd;
        })
  in
  let world ?(config = best) () =
    let rng = Random.State.make [| seed |] in
    let ds = Datagen.generate ~rng schema in
    let w = Warehouse.build schema config ds in
    let batch = Datagen.deltas ~rng schema ds in
    (w, batch)
  in
  (* Fault-free WAL overhead, tightened from extra10's 10% to 5%: group
     commit removed the per-batch sync forcing, so the protected refresh
     now pays only for the log pages themselves. *)
  let w0, b0 = world () in
  let base_io = Refresh.total_io (Refresh.run w0 b0) in
  let w1, b1 = world () in
  let prot_io =
    match Refresh.run_protected w1 b1 with
    | Ok (r, _) -> Refresh.total_io r
    | Error _ -> failwith "fault-free protected refresh failed"
  in
  let overhead = float_of_int (prot_io - base_io) /. float_of_int base_io in
  Printf.printf "fault-free WAL overhead: %d -> %d page I/Os (%s, budget 5%%)\n"
    base_io prot_io (pct overhead);
  assert (overhead <= 0.05);
  (* The group-commit trade: barriers against commit latency, on the same
     deterministic stream. *)
  let tbl =
    T.create
      [ "group"; "syncs"; "wal writes"; "wal bytes"; "mean latency"; "I/O" ]
  in
  let rows = ref [] in
  let syncs_at = Hashtbl.create 4 in
  List.iter
    (fun max_group ->
      let w, b = world () in
      let batches = split_batch n_batches b in
      let policy = { Refresh.gp_max_group = max_group; gp_window_ms = 1e9 } in
      match Refresh.run_protected_many ~policy w batches with
      | Error _ -> failwith "fault-free group stream failed"
      | Ok (r, _, g) ->
          let wal_bytes = Wal.total_bytes w.Warehouse.w_wal in
          let mean_latency =
            g.Refresh.gr_latency_ms_total /. float_of_int g.Refresh.gr_batches
          in
          Hashtbl.replace syncs_at max_group r.Refresh.rp_wal_syncs;
          T.add_row tbl
            [
              string_of_int max_group;
              string_of_int r.Refresh.rp_wal_syncs;
              string_of_int r.Refresh.rp_wal_writes;
              string_of_int wal_bytes;
              Printf.sprintf "%.1f ms" mean_latency;
              string_of_int (Refresh.total_io r);
            ];
          rows :=
            Json.Obj
              [
                ("max_group", Json.Int max_group);
                ("batches", Json.Int g.Refresh.gr_batches);
                ("wal_syncs", Json.Int r.Refresh.rp_wal_syncs);
                ("wal_writes", Json.Int r.Refresh.rp_wal_writes);
                ("wal_bytes", Json.Int wal_bytes);
                ("group_syncs", Json.Int g.Refresh.gr_group_syncs);
                ("largest_group", Json.Int g.Refresh.gr_max_group);
                ("mean_batch_latency_ms", Json.Float mean_latency);
                ("io", Json.Int (Refresh.total_io r));
              ]
            :: !rows)
    [ 1; 4 ];
  T.print tbl;
  (* Grouping must strictly reduce the durability barriers. *)
  assert (Hashtbl.find syncs_at 4 < Hashtbl.find syncs_at 1);
  (* Page-level compression: same logical warehouse, about half the durable
     data pages. *)
  let compress_all config =
    let module Element = Vis_costmodel.Element in
    List.fold_left Config.add_compress config
      (Element.Base 0 :: Element.Base 1 :: Element.Base 2
      :: [ Element.View (Vis_catalog.Schema.all_relations schema) ])
  in
  let w_plain, _ = world () in
  let w_comp, bc = world ~config:(compress_all best) () in
  let plain_pages = Warehouse.total_data_pages w_plain
  and comp_pages = Warehouse.total_data_pages w_comp in
  let ratio = float_of_int comp_pages /. float_of_int plain_pages in
  let comp_io = Refresh.total_io (Refresh.run w_comp bc) in
  Printf.printf
    "compressed durable footprint: %d -> %d data pages (ratio %.2f); \
     refresh I/O %d -> %d\n"
    plain_pages comp_pages ratio base_io comp_io;
  assert (ratio >= 0.4 && ratio <= 0.6);
  record "storage_engine"
    (Json.Obj
       [
         ("schema", Json.String "validation");
         ("seed", Json.Int seed);
         ("unprotected_io", Json.Int base_io);
         ("wal_overhead_frac", Json.Float overhead);
         ("wal_overhead_limit", Json.Float 0.05);
         ("group_commit", Json.List (List.rev !rows));
         ("data_pages_uncompressed", Json.Int plain_pages);
         ("data_pages_compressed", Json.Int comp_pages);
         ("compression_ratio", Json.Float ratio);
         ("compressed_refresh_io", Json.Int comp_io);
       ]);
  print_endline
    "Group commit covers many deferred commits with one durability barrier;\n\
     the latency column is what it trades away.  Compression halves the\n\
     durable pages (model ratio 0.5) while the refresh stays exact."

(* [Extra 14] End-to-end corruption handling: what detection costs when
   nothing is wrong, what a scrub pass costs, and what self-healing repair
   costs when something is.  The fault-free read overhead of checksummed
   pages is asserted under a 5% budget (the verification reads hit the
   shared per-bucket checksum pages, so the marginal I/O is small); a
   seeded at-rest damage plan then rots rebuildable pages and one scrub
   pass must convict and repair every one of them.  Every recorded number
   is exact and machine-independent; check_perf guards the overhead, the
   scrub I/O and detection completeness. *)
let corruption_study () =
  section "[Extra 14] Corruption: checksummed reads, scrub and rebuild";
  let module Datagen = Vis_workload.Datagen in
  let module Warehouse = Vis_maintenance.Warehouse in
  let module Refresh = Vis_maintenance.Refresh in
  let module Table = Vis_relalg.Table in
  let module Buffer_pool = Vis_storage.Buffer_pool in
  let module Heap_file = Vis_storage.Heap_file in
  let module Btree = Vis_storage.Btree in
  let module Faults = Vis_storage.Faults in
  let module Iostats = Vis_storage.Iostats in
  let schema = Schemas.validation () in
  let best = (Astar.search (Problem.make schema)).Astar.best in
  let seed = 42 in
  let world ~checksums () =
    let rng = Random.State.make [| seed |] in
    let ds = Datagen.generate ~rng schema in
    let w = Warehouse.build ~checksums schema best ds in
    let batch = Datagen.deltas ~rng schema ds in
    (w, batch)
  in
  (* Fault-free detection overhead: the identical refresh with and without
     page checksums. *)
  let w0, b0 = world ~checksums:false () in
  let base_io = Refresh.total_io (Refresh.run w0 b0) in
  let w1, b1 = world ~checksums:true () in
  let chk_io = Refresh.total_io (Refresh.run w1 b1) in
  let overhead = float_of_int (chk_io - base_io) /. float_of_int base_io in
  Printf.printf
    "fault-free checksum overhead: %d -> %d page I/Os (%s, budget 5%%)\n"
    base_io chk_io (pct overhead);
  assert (overhead >= 0. && overhead <= 0.05);
  (* One scrub pass over the clean warehouse: pure detection cost. *)
  Warehouse.reset_stats w1;
  let clean = Warehouse.scrub w1 in
  let scrub_io = Iostats.total_io w1.Warehouse.w_stats in
  let scrub_verifs = Iostats.checksum_verifications w1.Warehouse.w_stats in
  assert (clean.Warehouse.sc_corrupt = 0);
  Printf.printf "clean scrub: %d pages probed, %d verifications, %d page I/Os\n"
    clean.Warehouse.sc_scanned scrub_verifs scrub_io;
  (* Seeded at-rest damage on rebuildable pages (view heaps and all index
     nodes — base heaps have no redundant source and would refuse), then
     one self-healing scrub. *)
  let rebuildable =
    let heap_gids t =
      let h = Table.heap t in
      List.init (Heap_file.n_pages h) (Heap_file.page_gid h)
    in
    let index_gids t =
      List.concat_map (fun (_, bt) -> Btree.page_gids bt) (Table.indexes t)
    in
    List.sort_uniq compare
      (List.concat_map index_gids (Array.to_list w1.Warehouse.w_bases)
      @ List.concat_map
          (fun (_, vt) -> heap_gids vt @ index_gids vt)
          w1.Warehouse.w_views)
  in
  let targets = Array.of_list rebuildable in
  let hits =
    Faults.random_damage ~n:4
      ~rng:(Random.State.make [| seed; 0xd4 |])
      ~targets:(Array.length targets) ()
  in
  List.iter
    (fun (way, pick, sel) ->
      Buffer_pool.corrupt_page w1.Warehouse.w_pool targets.(pick) way sel)
    hits;
  let injected = List.length hits in
  Warehouse.reset_stats w1;
  let repair = Warehouse.scrub ~fail_unrecoverable:false w1 in
  let repair_io = Iostats.total_io w1.Warehouse.w_stats in
  Printf.printf
    "repair scrub: injected %d, convicted %d, views rebuilt %d, indexes \
     rebuilt %d, %d page I/Os\n"
    injected repair.Warehouse.sc_corrupt repair.Warehouse.sc_views_rebuilt
    repair.Warehouse.sc_indexes_rebuilt repair_io;
  (* The scrub must convict exactly the injected damage and repair all of
     it — nothing was unrecoverable by construction. *)
  assert (repair.Warehouse.sc_corrupt = injected);
  assert (repair.Warehouse.sc_unrecoverable = []);
  (match Warehouse.integrity_check w1 with
  | Ok () -> ()
  | Error msg -> failwith ("integrity after repair: " ^ msg));
  record "corruption"
    (Json.Obj
       [
         ("schema", Json.String "validation");
         ("seed", Json.Int seed);
         ("unchecked_refresh_io", Json.Int base_io);
         ("checksummed_refresh_io", Json.Int chk_io);
         ("read_overhead_frac", Json.Float overhead);
         ("read_overhead_limit", Json.Float 0.05);
         ("scrub_scanned", Json.Int clean.Warehouse.sc_scanned);
         ("scrub_verifications", Json.Int scrub_verifs);
         ("scrub_io", Json.Int scrub_io);
         ("injected", Json.Int injected);
         ("convicted", Json.Int repair.Warehouse.sc_corrupt);
         ("views_rebuilt", Json.Int repair.Warehouse.sc_views_rebuilt);
         ("indexes_rebuilt", Json.Int repair.Warehouse.sc_indexes_rebuilt);
         ("repair_io", Json.Int repair_io);
       ]);
  print_endline
    "Detection is cheap (the budget line pins it); repair is proportional\n\
     to the rebuilt structures, and base damage is the one thing a scrub\n\
     refuses to paper over."

(* [Extra 12] The advisor daemon under sustained multi-tenant load: four
   zipfian tenants ingest seeded delta streams for a fixed number of
   simulated ticks while the heaviest tenant's volume steps 3x mid-run,
   forcing the monitor -> sensitivity-probe -> budgeted-A* loop to fire.
   Wall-clock throughput (deltas/sec) is reported for the trajectory;
   the CI guard in check_perf pins only the machine-independent numbers:
   the re-optimization count (churn) and the simulated-clock p99 batch
   latency. *)
let extra12 () =
  section "[Extra 12] Advisor service: sustained multi-tenant throughput";
  let module Service = Vis_service.Service in
  let module Stream = Vis_service.Stream in
  let schema = Schemas.validation ~base_card:200. () in
  let design = (Vis_core.Greedy.search (Problem.make schema)).Vis_core.Greedy.best in
  (* Rates high enough that no tenant sees empty ticks (a zero tick reads
     as genuine rate collapse and would trigger the monitor), two warmup
     observations to damp Poisson noise on the lighter tenants. *)
  let tenants = 4 and ticks = 10 and base_rate = 10. in
  let config =
    {
      Service.default_config with
      Service.sv_seed = 42;
      sv_warmup = 2;
      sv_band = 1.4;
      sv_budget = 4_000;
    }
  in
  let svc = Service.create ~config () in
  for k = 0 to tenants - 1 do
    let drift =
      if k = 0 then Stream.Step { at = ticks / 2; factor = 3. }
      else Stream.Constant
    in
    ignore
      (Service.add_tenant ~seed:(200 + k)
         ~rate:(base_rate *. Stream.zipf_weight ~s:0.8 ~rank:k)
         ~drift ~config:design svc schema)
  done;
  let t0 = Unix.gettimeofday () in
  Service.run svc ~ticks;
  let wall_s = Unix.gettimeofday () -. t0 in
  let t = Service.totals svc in
  let deltas_per_sec = float_of_int t.Service.tt_rows /. wall_s in
  let tbl =
    T.create
      [ "tenant"; "batches"; "rows"; "syncs"; "checks"; "gated"; "reopts";
        "swaps"; "p99 latency" ]
  in
  let tenant_rows =
    List.map
      (fun id ->
        let s = Service.stats svc id in
        let p99 = Service.percentile ~p:0.99 s.Service.ts_latencies_ms in
        T.add_row tbl
          [
            s.Service.ts_name;
            string_of_int s.Service.ts_batches;
            string_of_int s.Service.ts_rows;
            string_of_int s.Service.ts_group_syncs;
            string_of_int s.Service.ts_checks;
            string_of_int s.Service.ts_gated;
            string_of_int s.Service.ts_reopts;
            string_of_int s.Service.ts_swaps;
            Printf.sprintf "%.1f ms" p99;
          ];
        Json.Obj
          [
            ("tenant", Json.String s.Service.ts_name);
            ("batches", Json.Int s.Service.ts_batches);
            ("rows", Json.Int s.Service.ts_rows);
            ("group_syncs", Json.Int s.Service.ts_group_syncs);
            ("checks", Json.Int s.Service.ts_checks);
            ("gated", Json.Int s.Service.ts_gated);
            ("reopts", Json.Int s.Service.ts_reopts);
            ("swaps", Json.Int s.Service.ts_swaps);
            ("p99_latency_ms", Json.Float p99);
          ])
      (Service.tenant_ids svc)
  in
  T.print tbl;
  Printf.printf
    "%d tenants, %d ticks: %d batches / %d delta rows in %.2fs wall \
     (%.0f deltas/sec); %d re-optimizations, %d swaps, p99 batch latency \
     %.1f ms\n"
    tenants ticks t.Service.tt_batches t.Service.tt_rows wall_s deltas_per_sec
    t.Service.tt_reopts t.Service.tt_swaps t.Service.tt_p99_latency_ms;
  (* The scenario is built to exercise the loop: the stepped tenant must
     re-optimize, nothing may fail, and every batch must commit. *)
  assert (t.Service.tt_failed = 0);
  assert (t.Service.tt_reopts >= 1);
  assert (t.Service.tt_swaps >= 1);
  record "service"
    (Json.Obj
       [
         ("schema", Json.String "validation (base 200)");
         ("seed", Json.Int 42);
         ("tenants", Json.Int tenants);
         ("ticks", Json.Int ticks);
         ("batches", Json.Int t.Service.tt_batches);
         ("rows", Json.Int t.Service.tt_rows);
         ("wall_s", Json.Float wall_s);
         ("deltas_per_sec", Json.Float deltas_per_sec);
         ("reopts", Json.Int t.Service.tt_reopts);
         ("swaps", Json.Int t.Service.tt_swaps);
         ("mean_batch_latency_ms", Json.Float t.Service.tt_mean_latency_ms);
         ("p99_batch_latency_ms", Json.Float t.Service.tt_p99_latency_ms);
         ("per_tenant", Json.List tenant_rows);
       ]);
  Service.shutdown svc;
  print_endline
    "The daemon sustains all four streams while re-optimizing the drifted\n\
     tenant online; deltas/sec is wall-clock (trajectory only), while the\n\
     re-optimization count and p99 batch latency are simulated-clock exact\n\
     and guarded by check_perf."

(* ------------------------------------------------------------------ *)
(* [Extra 13] Workload-driven candidate mining: a seeded synthetic query
   log (zipf 2.0 — a heavily skewed workload) is mined for frequent
   access patterns at minsup 0.1, and the budgeted A* runs on the pruned
   candidate set.  Both sides of each star case get the same beam and the
   same 20,000-expansion budget; the mined search drains its
   workload-proportional space and terminates early, while the unpruned
   search is still budget-bound — [cost_evaluations] counts the states
   the search actually costed ([Search_stats.evaluated], exact and
   identical at every jobs setting), so the reduction is the
   machine-independent work saved by mining, gated in check_perf like the
   incremental_costing counters.  Small schemas run the exact
   (unbudgeted) A* on both sides to measure true optimality loss;
   minsup=0 must reproduce the unpruned problem bit for bit. *)

let mined_candidates () =
  section "[Extra 13] Workload-driven candidate mining";
  let module Querygen = Vis_workload.Querygen in
  let module Miner = Vis_workload.Miner in
  let module Search_stats = Vis_core.Search_stats in
  let tbl =
    T.create
      [ "case"; "features"; "mined"; "views"; "mined"; "evals"; "mined";
        "reduction"; "wall"; "cost ratio" ]
  in
  let reduction_rows = ref [] in
  List.iter
    (fun (name, n_dims, must_reduce) ->
      let schema = Schemas.star ~n_dims () in
      let log = Querygen.generate ~seed:42 ~n:400 ~zipf:2.0 schema in
      let m = Miner.mine ~minsup:0.1 schema log in
      let run ?candidates jobs =
        let p =
          Problem.make ~connected_only:true ~max_view_rels:2 ?candidates
            schema
        in
        let t0 = Unix.gettimeofday () in
        let r, _cert = Astar.search_budgeted ~max_expanded:20_000 ~beam:64 ~jobs p in
        let dt = Unix.gettimeofday () -. t0 in
        (p, r, Search_stats.evaluated r.Astar.search_stats, dt)
      in
      let p_full, r_full, e_full, dt_full = run 1 in
      let p_mined, r_mined, e_mined, dt_mined =
        run ~candidates:m.Miner.m_candidates 1
      in
      (* Determinism of the mined-space search across pool widths. *)
      let _, r4, e4, _ = run ~candidates:m.Miner.m_candidates 4 in
      assert (Config.equal r_mined.Astar.best r4.Astar.best);
      assert (r_mined.Astar.best_cost = r4.Astar.best_cost);
      assert (r_mined.Astar.stats.Astar.expanded = r4.Astar.stats.Astar.expanded);
      assert (e_mined = e4);
      let reduction = float_of_int e_full /. float_of_int (max 1 e_mined) in
      if must_reduce then assert (reduction >= 5.);
      let cost_ratio = r_mined.Astar.best_cost /. r_full.Astar.best_cost in
      T.add_row tbl
        [
          name;
          string_of_int (List.length p_full.Problem.features);
          string_of_int (List.length p_mined.Problem.features);
          string_of_int (List.length p_full.Problem.candidate_views);
          string_of_int (List.length p_mined.Problem.candidate_views);
          string_of_int e_full;
          string_of_int e_mined;
          Printf.sprintf "%.1fx" reduction;
          Printf.sprintf "%.1fx" (dt_full /. Float.max dt_mined 1e-9);
          Printf.sprintf "%.3f" cost_ratio;
        ];
      reduction_rows :=
        Json.Obj
          [
            ("case", Json.String name);
            ("minsup", Json.Float 0.1);
            ("zipf", Json.Float 2.0);
            ("log_queries", Json.Int 400);
            ("features_full", Json.Int (List.length p_full.Problem.features));
            ("features_mined", Json.Int (List.length p_mined.Problem.features));
            ("views_full", Json.Int (List.length p_full.Problem.candidate_views));
            ("views_mined", Json.Int (List.length p_mined.Problem.candidate_views));
            ("cost_evaluations_full", Json.Int e_full);
            ("cost_evaluations_mined", Json.Int e_mined);
            ("reduction_factor", Json.Float reduction);
            ("wall_s_full", Json.Float dt_full);
            ("wall_s_mined", Json.Float dt_mined);
            ("budgeted_cost_ratio", Json.Float cost_ratio);
          ]
        :: !reduction_rows)
    [ ("star-8", 7, false); ("star-10", 9, true); ("star-12", 11, true) ];
  T.print tbl;
  (* Exact optimality loss where the unbudgeted A* is tractable. *)
  let loss_tbl = T.create [ "schema"; "minsup"; "mined cost"; "loss" ] in
  let loss_rows = ref [] in
  List.iter
    (fun (name, schema) ->
      let full = Astar.search (Problem.make schema) in
      List.iter
        (fun minsup ->
          let log = Querygen.generate ~seed:42 ~n:400 schema in
          let m = Miner.mine ~minsup schema log in
          let p = Problem.make ~candidates:m.Miner.m_candidates schema in
          let r = Astar.search p in
          let loss =
            (r.Astar.best_cost -. full.Astar.best_cost) /. full.Astar.best_cost
          in
          if minsup = 0. then begin
            (* Full coverage: the problem, and hence the optimum, must be
               bit-identical to the unpruned run. *)
            assert (Config.equal r.Astar.best full.Astar.best);
            assert (r.Astar.best_cost = full.Astar.best_cost)
          end;
          assert (loss >= -1e-9);
          loss_tbl
          |> fun t ->
          T.add_row t
            [
              name;
              Printf.sprintf "%.1f" minsup;
              Printf.sprintf "%.1f" r.Astar.best_cost;
              pct loss;
            ];
          loss_rows :=
            Json.Obj
              [
                ("schema", Json.String name);
                ("minsup", Json.Float minsup);
                ("full_cost", Json.Float full.Astar.best_cost);
                ("mined_cost", Json.Float r.Astar.best_cost);
                ("optimality_loss", Json.Float loss);
              ]
            :: !loss_rows)
        [ 0.; 0.1; 0.3 ])
    [
      ("3 rel Schema 1", Schemas.schema1 ());
      ("4 rel chain", Schemas.chain ~n:4 ());
    ];
  T.print loss_tbl;
  record "mined_candidates"
    (Json.Obj
       [
         ("reduction", Json.List (List.rev !reduction_rows));
         ("optimality_loss", Json.List (List.rev !loss_rows));
       ]);
  print_endline
    "Reduction compares identical budgeted searches (20,000 expansions,\n\
     beam 64): the mined search drains its workload-proportional space and\n\
     stops, the unpruned search is still budget-bound.  \"evals\" counts\n\
     states costed (Search_stats.evaluated) — exact and identical at any\n\
     jobs; the mined optimum was re-run at jobs=4 and matched bit for bit.\n\
     Loss is the exact penalty vs. the unpruned optimum on schemas where\n\
     the unbudgeted A* is tractable; minsup=0 reproduces the unpruned\n\
     problem bit-identically (asserted).  The mined-side counters and\n\
     reductions gate the CI perf smoke."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the optimizer components. *)

let bechamel_benches () =
  section "[Timings] Bechamel micro-benchmarks of the optimizer";
  let open Bechamel in
  let schema = Schemas.schema1 () in
  let derived = Derived.create schema in
  let p = Problem.make schema in
  let config = (Astar.search p).Astar.best in
  let two_rel = Schemas.two_relation () in
  let tests =
    Test.make_grouped ~name:"vis" ~fmt:"%s/%s"
      [
        Test.make ~name:"total cost (fresh cache)"
          (Staged.stage (fun () -> ignore (Cost.total_of derived config)));
        Test.make ~name:"A* on Schema 1"
          (Staged.stage (fun () -> ignore (Astar.search (Problem.make schema))));
        Test.make ~name:"A* on 2 relations"
          (Staged.stage (fun () ->
               ignore (Astar.search (Problem.make two_rel))));
        Test.make ~name:"rules advisor on Schema 1"
          (Staged.stage (fun () ->
               ignore (Vis_core.Rules.advise (Problem.make schema))));
        Test.make ~name:"exhaustive on 2 relations"
          (Staged.stage (fun () ->
               ignore (Exhaustive.search (Problem.make two_rel))));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let tbl = T.create [ "operation"; "time per run" ] in
  let timings = ref [] in
  Hashtbl.iter
    (fun _clock per_test ->
      Hashtbl.iter
        (fun name ols_result ->
          let estimate = Analyze.OLS.estimates ols_result in
          let pretty =
            match estimate with
            | Some [ ns ] when ns < 1e3 -> Printf.sprintf "%.0f ns" ns
            | Some [ ns ] when ns < 1e6 -> Printf.sprintf "%.1f us" (ns /. 1e3)
            | Some [ ns ] when ns < 1e9 -> Printf.sprintf "%.2f ms" (ns /. 1e6)
            | Some [ ns ] -> Printf.sprintf "%.2f s" (ns /. 1e9)
            | Some _ | None -> "n/a"
          in
          (match estimate with
          | Some [ ns ] -> timings := (name, Json.Float ns) :: !timings
          | Some _ | None -> ());
          T.add_row tbl [ name; pretty ])
        per_test)
    merged;
  T.print tbl;
  record "timings_ns"
    (Json.Obj (List.sort (fun (a, _) (b, _) -> compare a b) !timings))

let () =
  figure5 ();
  table2 ();
  if not quick then figure4 ()
  else begin
    section "[Figure 4]";
    print_endline "(skipped in quick mode)"
  end;
  figure6 ();
  figure7 ();
  figure8 ();
  figure9 ();
  figure10_11 ();
  figure12 ();
  extra1 ();
  extra2 ();
  extra3 ();
  extra4 ();
  extra5 ();
  cache_study ();
  parallel_scaling ();
  incremental_costing ();
  extra10 ();
  extra11 ();
  extra12 ();
  mined_candidates ();
  corruption_study ();
  bechamel_benches ();
  let oc = open_out "BENCH_vis.json" in
  output_string oc
    (Json.to_string ~indent:2
       (Json.Obj (("quick", Json.Bool quick) :: !bench_json)));
  output_char oc '\n';
  close_out oc;
  print_endline "\nAll experiments completed; machine-readable mirror in BENCH_vis.json."
